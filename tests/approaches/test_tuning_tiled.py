"""Launch-shape autotuner and the tiled-QR approach adapter."""

import pytest

from repro.approaches import (
    TiledQrApproach,
    Workload,
    feasible_thread_counts,
    tune_block_threads,
)


class TestFeasibility:
    def test_all_square_counts_for_medium_matrix(self):
        counts = feasible_thread_counts(Workload.square("qr", 56, 100))
        assert counts == [16, 64, 256, 1024]

    def test_tiny_matrix_excludes_wide_grids(self):
        counts = feasible_thread_counts(Workload.square("qr", 4, 100))
        assert 256 not in counts
        assert 16 in counts


class TestTuner:
    def test_rediscovers_paper_choice_at_56(self):
        tuned = tune_block_threads(Workload.square("qr", 56, 8000))
        assert tuned.threads == 64  # the paper's rule below 80 columns

    def test_candidates_recorded(self):
        tuned = tune_block_threads(Workload.square("qr", 56, 8000))
        assert set(tuned.candidates) == {16, 64, 256, 1024}
        assert tuned.gflops == max(tuned.candidates.values())

    def test_config_property_consistent(self):
        tuned = tune_block_threads(Workload.square("qr", 32, 1000))
        assert tuned.config.threads == tuned.threads
        assert tuned.config.m == 32

    def test_explicit_candidates(self):
        tuned = tune_block_threads(
            Workload.square("qr", 56, 1000), candidates=[64, 256]
        )
        assert tuned.threads in (64, 256)

    def test_lu_and_gj_workloads(self):
        for kind in ("lu", "gauss_jordan"):
            tuned = tune_block_threads(Workload.square(kind, 48, 1000))
            assert tuned.gflops > 0

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            tune_block_threads(Workload.square("qr", 56, 100), candidates=[])


class TestTiledApproach:
    def test_supports_tall_qr_only(self):
        t = TiledQrApproach()
        assert t.supports(Workload("qr", 240, 66, 128, complex_dtype=True))
        assert not t.supports(Workload("lu", 64, 64, 128))
        assert not t.supports(Workload("qr", 16, 64, 128))

    def test_spill_detector_matches_paper_cases(self):
        t = TiledQrApproach()
        assert not t.spills_single_block(
            Workload("qr", 80, 16, 384, complex_dtype=True)
        )
        assert t.spills_single_block(
            Workload("qr", 240, 66, 128, complex_dtype=True)
        )

    def test_table7_band_for_240x66(self):
        t = TiledQrApproach()
        g = t.gflops(Workload("qr", 240, 66, 128, complex_dtype=True))
        assert 30 < g < 120  # paper: 99; our spill model lands lower

    def test_seconds_scale_with_batch(self):
        # Large batches amortize the wave quantization (ceil(batch /
        # resident blocks) per stage), so doubling the batch doubles time.
        t = TiledQrApproach()
        one = t.seconds(Workload("qr", 240, 66, 1120, complex_dtype=True))
        two = t.seconds(Workload("qr", 240, 66, 2240, complex_dtype=True))
        assert two == pytest.approx(2 * one, rel=0.05)

    def test_matches_numeric_tiled_path(self):
        import numpy as np

        from repro.kernels.batched import random_batch
        from repro.tiled import tiled_qr

        a = random_batch(1, 192, 96, dtype=np.complex64)
        numeric = tiled_qr(a)
        t = TiledQrApproach()
        w = Workload("qr", 192, 96, 1, complex_dtype=True)
        # Same stage replays behind both paths.
        assert t.seconds(w) == pytest.approx(numeric.seconds, rel=0.01)


class TestRealTime:
    def test_budget_validation(self):
        from repro.stap import RealTimeBudget

        with pytest.raises(ValueError):
            RealTimeBudget(cpi_rate_hz=0)
        with pytest.raises(ValueError):
            RealTimeBudget(qr_time_share=0)

    def test_gpu_meets_realtime_where_cpu_struggles(self):
        from repro.approaches import CpuLapackApproach, PerBlockApproach
        from repro.stap import RT_STAP_CASES, RealTimeBudget, assess_realtime

        budget = RealTimeBudget(cpi_rate_hz=10.0)
        case = RT_STAP_CASES[0]  # 80x16 x 384
        gpu = assess_realtime(case, PerBlockApproach(), budget)
        cpu = assess_realtime(case, CpuLapackApproach(), budget)
        assert gpu.meets_deadline
        assert gpu.headroom > cpu.headroom

    def test_max_cpi_rate(self):
        from repro.approaches import TiledQrApproach
        from repro.stap import RT_STAP_CASES, RealTimeBudget, assess_realtime

        report = assess_realtime(
            RT_STAP_CASES[1], TiledQrApproach(), RealTimeBudget(cpi_rate_hz=5.0)
        )
        assert report.max_cpi_rate_hz == pytest.approx(
            report.budget.qr_time_share / report.seconds_per_cpi
        )

    def test_unsupported_approach_rejected(self):
        from repro.approaches import HybridBlockedApproach
        from repro.stap import RT_STAP_CASES, assess_realtime

        with pytest.raises(ValueError):
            assess_realtime(RT_STAP_CASES[0], HybridBlockedApproach())
