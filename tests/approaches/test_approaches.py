"""The five approaches and the Figure-10 design-space conclusions."""

import numpy as np
import pytest

from repro.approaches import (
    CpuLapackApproach,
    CublasStreamsApproach,
    HybridBlockedApproach,
    PerBlockApproach,
    PerThreadApproach,
    Workload,
    best_approach,
    default_approaches,
    rank_approaches,
)


class TestWorkload:
    def test_square_helper(self):
        w = Workload.square("qr", 56, 5000)
        assert (w.m, w.n, w.batch) == (56, 56, 5000)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Workload("qr", 0, 4, 10)
        with pytest.raises(ValueError):
            Workload("qr", 4, 4, 0)
        with pytest.raises(ValueError):
            Workload("cholesky", 4, 4, 1)


class TestSupports:
    def test_per_thread_needs_small_square(self):
        pt = PerThreadApproach()
        assert pt.supports(Workload.square("qr", 8, 100))
        assert not pt.supports(Workload.square("qr", 256, 100))
        assert not pt.supports(Workload("qr", 16, 8, 100))

    def test_per_block_supports_tall_qr(self):
        pb = PerBlockApproach()
        assert pb.supports(Workload("qr", 240, 66, 128, complex_dtype=True))
        assert not pb.supports(Workload("lu", 16, 8, 100))

    def test_hybrid_is_real_only(self):
        hy = HybridBlockedApproach()
        assert hy.supports(Workload.square("qr", 512, 1))
        assert not hy.supports(Workload.square("qr", 512, 1, complex_dtype=True))
        assert not hy.supports(Workload.square("gauss_jordan", 64, 10))

    def test_cpu_supports_everything_tall(self):
        cpu = CpuLapackApproach()
        for kind in ("qr", "lu", "gauss_jordan", "least_squares"):
            assert cpu.supports(Workload.square(kind, 32, 100))


class TestPerBlockReplayConsistency:
    """The charge replay must match the device kernels' cycle counts."""

    @pytest.mark.parametrize("n", [16, 32, 56])
    def test_qr_replay_matches_device_kernel(self, n):
        from repro.kernels.batched import random_batch
        from repro.kernels.device import per_block_qr

        a = random_batch(2, n, n, dtype=np.float32, seed=n)
        device_cycles = per_block_qr(a).cycles
        replay = PerBlockApproach().launch(Workload.square("qr", n, 1))
        assert replay.cycles == pytest.approx(device_cycles, rel=0.02)

    @pytest.mark.parametrize("n", [16, 32, 56])
    def test_lu_replay_matches_device_kernel(self, n):
        from repro.kernels.batched import diagonally_dominant_batch
        from repro.kernels.device import per_block_lu

        a = diagonally_dominant_batch(2, n, dtype=np.float32, seed=n)
        device_cycles = per_block_lu(a).cycles
        replay = PerBlockApproach().launch(Workload.square("lu", n, 1))
        assert replay.cycles == pytest.approx(device_cycles, rel=0.02)

    def test_gj_replay_matches_device_kernel(self):
        from repro.kernels.batched import diagonally_dominant_batch, rhs_batch
        from repro.kernels.device import per_block_gauss_jordan

        a = diagonally_dominant_batch(2, 32, dtype=np.float32)
        b = rhs_batch(2, 32, dtype=np.float32)[:, :, 0]
        device_cycles = per_block_gauss_jordan(a, b).cycles
        replay = PerBlockApproach().launch(Workload.square("gauss_jordan", 32, 1))
        assert replay.cycles == pytest.approx(device_cycles, rel=0.05)


class TestFigure10DesignSpace:
    """'The design space for different sized problems is not flat.'"""

    def test_per_thread_wins_tiny_problems(self):
        w = Workload.square("qr", 8, 64000)
        assert best_approach(w).name == "per-thread"

    def test_per_block_wins_small_problems(self):
        for n in (32, 56, 64, 128):
            w = Workload.square("qr", n, 8000)
            assert best_approach(w).name == "per-block", n

    def test_hybrid_wins_large_single_problems(self):
        for n in (1024, 4096, 8192):
            w = Workload.square("qr", n, 1)
            assert best_approach(w).name == "hybrid-blocked", n

    def test_crossover_exists_between_block_and_hybrid(self):
        # Somewhere between 128 and 2048 the hybrid overtakes per-block.
        pb, hy = PerBlockApproach(), HybridBlockedApproach()
        small = Workload.square("qr", 128, 100)
        large = Workload.square("qr", 2048, 100)
        assert pb.gflops(small) > hy.gflops(small)
        assert hy.gflops(large) > pb.gflops(large)

    def test_streams_never_wins(self):
        # Section VI-C: no benefit from streams at any tested size.
        for n in (16, 64, 256, 1024):
            w = Workload.square("qr", n, 1000)
            assert best_approach(w).name != "cublas-streams", n

    def test_streams_loses_to_cpu_for_small(self):
        w = Workload.square("qr", 56, 5000)
        assert CublasStreamsApproach().gflops(w) < CpuLapackApproach().gflops(w)

    def test_ranking_is_sorted(self):
        ranks = rank_approaches(Workload.square("qr", 64, 1000))
        values = [r.gflops for r in ranks]
        assert values == sorted(values, reverse=True)

    def test_unsupported_workload_raises(self):
        w = Workload("qr", 8, 16, 10)  # wide: nobody factors it
        with pytest.raises(ValueError):
            rank_approaches(w)


class TestFigure11Comparisons:
    def test_per_block_vs_mkl_headline_at_56(self):
        # Abstract: 29x faster than MKL for 5000 56x56 SP QRs.
        w = Workload.square("qr", 56, 5000)
        gpu = PerBlockApproach().gflops(w)
        mkl = CpuLapackApproach().gflops(w)
        assert 15 < gpu / mkl < 45

    def test_per_block_vs_magma_two_orders_at_56(self):
        # "up to 140x faster than the existing GPU library".
        w = Workload.square("qr", 56, 5000)
        gpu = PerBlockApproach().gflops(w)
        magma = HybridBlockedApproach().gflops(w)
        assert 50 < gpu / magma < 400

    def test_magma_cpu_start_beats_gpu_start_small(self):
        # Figure 11: "The CPU-start is faster because MAGMA solves these
        # problems mostly on the CPU anyway."
        w = Workload.square("qr", 56, 100)
        cpu_start = HybridBlockedApproach(gpu_start=False).gflops(w)
        gpu_start = HybridBlockedApproach(gpu_start=True).gflops(w)
        assert cpu_start > gpu_start

    def test_gpu_wins_all_figure11_sizes(self):
        pb, cpu = PerBlockApproach(), CpuLapackApproach()
        for n in range(8, 145, 8):
            w = Workload.square("qr", n, 8000)
            assert pb.gflops(w) > cpu.gflops(w), n


class TestSeconds:
    def test_seconds_consistent_with_gflops(self):
        w = Workload.square("qr", 56, 1000)
        for approach in default_approaches():
            if not approach.supports(w):
                continue
            secs = approach.seconds(w)
            assert secs > 0

    def test_cpu_seconds_scale_with_batch(self):
        cpu = CpuLapackApproach()
        one = cpu.seconds(Workload.square("qr", 56, 400))
        two = cpu.seconds(Workload.square("qr", 56, 800))
        assert two == pytest.approx(2 * one, rel=0.01)
