"""Dispatcher determinism and trace instrumentation."""

from repro.approaches import Workload, rank_approaches
from repro.approaches.base import Approach
from repro.observe import tracing


class _Fixed(Approach):
    """Stub approach with a pinned throughput."""

    def __init__(self, name: str, gflops: float):
        self.name = name
        self._gflops = gflops

    def supports(self, work: Workload) -> bool:
        return True

    def gflops(self, work: Workload) -> float:
        return self._gflops


WORK = Workload.square("qr", 16, 100)


class TestTieBreak:
    def test_equal_gflops_order_by_name(self):
        ranked = rank_approaches(WORK, [_Fixed("b", 50.0), _Fixed("a", 50.0)])
        assert [r.name for r in ranked] == ["a", "b"]

    def test_order_independent_of_input_order(self):
        approaches = [_Fixed("z", 50.0), _Fixed("m", 50.0), _Fixed("a", 50.0)]
        forward = rank_approaches(WORK, approaches)
        backward = rank_approaches(WORK, list(reversed(approaches)))
        assert [r.name for r in forward] == [r.name for r in backward] == [
            "a", "m", "z",
        ]

    def test_throughput_still_dominates(self):
        ranked = rank_approaches(WORK, [_Fixed("a", 10.0), _Fixed("z", 99.0)])
        assert [r.name for r in ranked] == ["z", "a"]


class TestDispatchTracing:
    def test_ranking_emits_candidates_and_winner(self):
        with tracing() as tracer:
            rank_approaches(WORK, [_Fixed("a", 10.0), _Fixed("b", 20.0)])
        names = [e.name for e in tracer.events]
        assert names.count("dispatch.candidate") == 2
        assert "dispatch.winner" in names
        assert tracer.counters.value("dispatch.rankings") == 1
        winner = next(e for e in tracer.events if e.name == "dispatch.winner")
        assert winner.args["approach"] == "b"
