"""Batched Gauss-Jordan solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, SingularMatrixError
from repro.kernels.batched import (
    diagonally_dominant_batch,
    gauss_jordan_solve,
    rhs_batch,
    solve_residual,
)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 56])
    def test_solves_diagonally_dominant(self, n):
        a = diagonally_dominant_batch(8, n, dtype=np.float32, seed=n)
        b = rhs_batch(8, n, dtype=np.float32)
        res = gauss_jordan_solve(a, b)
        assert res.all_solved
        assert solve_residual(a, res.x, b) < 5e-5

    def test_matches_numpy_solve(self):
        a = diagonally_dominant_batch(4, 12, dtype=np.float64)
        b = rhs_batch(4, 12, dtype=np.float64)
        res = gauss_jordan_solve(a, b, fast_math=False)
        ref = np.stack([np.linalg.solve(a[i], b[i]) for i in range(4)])
        np.testing.assert_allclose(res.x, ref, rtol=1e-9, atol=1e-9)

    def test_multiple_rhs(self):
        a = diagonally_dominant_batch(4, 8, dtype=np.float64)
        b = rhs_batch(4, 8, nrhs=3, dtype=np.float64)
        res = gauss_jordan_solve(a, b, fast_math=False)
        assert res.x.shape == (4, 8, 3)
        assert solve_residual(a, res.x, b) < 1e-9

    def test_complex_systems(self):
        a = diagonally_dominant_batch(4, 10, dtype=np.complex64)
        b = rhs_batch(4, 10, dtype=np.complex64)
        res = gauss_jordan_solve(a, b)
        assert solve_residual(a, res.x, b) < 5e-5

    def test_identity_returns_rhs(self):
        eye = np.tile(np.eye(6, dtype=np.float32), (3, 1, 1))
        b = rhs_batch(3, 6, dtype=np.float32)
        res = gauss_jordan_solve(eye, b)
        np.testing.assert_allclose(res.x, b, rtol=1e-6)

    def test_input_not_mutated(self):
        a = diagonally_dominant_batch(2, 5, dtype=np.float32)
        b = rhs_batch(2, 5, dtype=np.float32)
        a0, b0 = a.copy(), b.copy()
        gauss_jordan_solve(a, b)
        np.testing.assert_array_equal(a, a0)
        np.testing.assert_array_equal(b, b0)


class TestSingularHandling:
    def _singular_batch(self):
        a = diagonally_dominant_batch(3, 4, dtype=np.float32)
        a[1] = 0.0  # problem 1 is singular
        b = rhs_batch(3, 4, dtype=np.float32)
        return a, b

    def test_flags_singular_problem(self):
        a, b = self._singular_batch()
        res = gauss_jordan_solve(a, b)
        assert res.not_solved.tolist() == [False, True, False]
        assert not res.all_solved

    def test_singular_solution_is_nan(self):
        a, b = self._singular_batch()
        res = gauss_jordan_solve(a, b)
        assert np.isnan(res.x[1]).all()

    def test_healthy_problems_unaffected(self):
        a, b = self._singular_batch()
        res = gauss_jordan_solve(a, b)
        healthy = [0, 2]
        assert solve_residual(a[healthy], res.x[healthy], b[healthy]) < 5e-5

    def test_raise_mode(self):
        a, b = self._singular_batch()
        with pytest.raises(SingularMatrixError):
            gauss_jordan_solve(a, b, on_singular="raise")

    def test_no_pivoting_fails_where_lapack_succeeds(self):
        # The documented limitation: a permutation matrix is perfectly
        # conditioned but has a zero pivot without pivoting.
        a = np.array([[[0.0, 1.0], [1.0, 0.0]]], dtype=np.float32)
        b = np.array([[1.0, 2.0]], dtype=np.float32)
        res = gauss_jordan_solve(a, b)
        assert res.not_solved[0]


class TestValidation:
    def test_rhs_shape_mismatch(self):
        a = diagonally_dominant_batch(2, 4, dtype=np.float32)
        with pytest.raises(ShapeError):
            gauss_jordan_solve(a, np.zeros((2, 5), dtype=np.float32))

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            gauss_jordan_solve(
                np.zeros((2, 3, 4), dtype=np.float32),
                np.zeros((2, 3), dtype=np.float32),
            )


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=12),
        batch=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_residual_small_for_dominant_systems(self, n, batch, seed):
        a = diagonally_dominant_batch(batch, n, dtype=np.float64, seed=seed)
        b = rhs_batch(batch, n, dtype=np.float64, seed=seed + 1)
        res = gauss_jordan_solve(a, b, fast_math=False)
        assert res.all_solved
        assert solve_residual(a, res.x, b) < 1e-8

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_fast_math_close_to_ieee(self, seed):
        a = diagonally_dominant_batch(4, 8, dtype=np.float32, seed=seed)
        b = rhs_batch(4, 8, dtype=np.float32, seed=seed + 1)
        fast = gauss_jordan_solve(a, b, fast_math=True).x
        ieee = gauss_jordan_solve(a, b, fast_math=False).x
        denom = np.maximum(np.abs(ieee), 1e-3)
        assert (np.abs(fast - ieee) / denom).max() < 1e-4
