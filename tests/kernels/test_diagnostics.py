"""Numerical diagnostics: growth factors and condition estimates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.batched import (
    condition_estimate,
    diagonally_dominant_batch,
    lu_factor,
    lu_growth_factor,
    qr_factor,
    random_batch,
)


def conditioned(kappa, m=12, n=8, seed=0):
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    sv = np.logspace(0, -np.log10(kappa), n)
    return (u * sv) @ v.T


class TestGrowthFactor:
    def test_benign_inputs_near_one(self):
        a = diagonally_dominant_batch(4, 10, dtype=np.float64)
        growth = lu_growth_factor(a, lu_factor(a, fast_math=False).lu)
        # Diagonally dominant: unpivoted growth provably <= 2.
        assert (growth <= 2.0).all()

    def test_tiny_pivot_explodes(self):
        a = random_batch(3, 8, 8, dtype=np.float64, seed=2)
        a[:, 0, 0] = 1e-12
        growth = lu_growth_factor(a, lu_factor(a, fast_math=False).lu)
        assert (growth > 1e6).all()

    def test_singular_reports_inf(self):
        a = diagonally_dominant_batch(2, 4, dtype=np.float64)
        a[1] = 0
        lu = lu_factor(a, fast_math=False).lu
        growth = lu_growth_factor(a, lu)
        assert np.isfinite(growth[0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            lu_growth_factor(np.zeros((2, 4, 4)), np.zeros((2, 5, 5)))

    def test_2d_input_accepted(self):
        a = diagonally_dominant_batch(1, 6, dtype=np.float64)[0]
        lu = lu_factor(a[None], fast_math=False).lu[0]
        assert lu_growth_factor(a, lu).shape == (1,)


class TestConditionEstimate:
    @pytest.mark.parametrize("kappa", [1e1, 1e4, 1e7])
    def test_matches_numpy_cond_within_factor(self, kappa):
        a = conditioned(kappa)[None]
        r = qr_factor(a.copy(), fast_math=False).r()
        est = condition_estimate(r)[0]
        ref = np.linalg.cond(a[0])
        assert ref / 3 < est < 3 * ref

    def test_identity_is_perfectly_conditioned(self):
        r = np.broadcast_to(np.eye(8), (3, 8, 8)).copy()
        est = condition_estimate(r)
        np.testing.assert_allclose(est, 1.0, rtol=1e-6)

    def test_complex_factor(self):
        a = random_batch(2, 12, 6, dtype=np.complex128, seed=3)
        r = qr_factor(a.copy(), fast_math=False).r()
        est = condition_estimate(r)
        ref = np.array([np.linalg.cond(a[i]) for i in range(2)])
        assert (est > ref / 5).all() and (est < 5 * ref).all()

    def test_batch_of_mixed_conditions(self):
        a = np.stack([conditioned(1e2, seed=1), conditioned(1e6, seed=2)])
        r = qr_factor(a.copy(), fast_math=False).r()
        est = condition_estimate(r)
        assert est[1] > 100 * est[0]

    def test_validation(self):
        with pytest.raises(ShapeError):
            condition_estimate(np.zeros((2, 4, 3)))
        with pytest.raises(ValueError):
            condition_estimate(np.eye(4)[None], iterations=0)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_estimate_never_exceeds_truth_wildly(self, seed):
        a = random_batch(1, 10, 6, dtype=np.float64, seed=seed)
        r = qr_factor(a.copy(), fast_math=False).r()
        est = condition_estimate(r)[0]
        ref = np.linalg.cond(a[0])
        # Power iteration underestimates cond; it must never overshoot
        # beyond iteration noise and never fall absurdly short.
        assert est <= ref * 1.05
        assert est >= ref / 10
