"""Validation helpers and problem generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.batched import (
    diagonally_dominant_batch,
    hermitian_batch,
    lu_reconstruction_error,
    orthogonality_error,
    qr_reconstruction_error,
    random_batch,
    rhs_batch,
    solve_residual,
    triangular_error,
)
from repro.kernels.batched.validate import (
    as_batch,
    check_square_batch,
    check_tall_batch,
)


class TestAsBatch:
    def test_2d_promoted(self):
        out = as_batch(np.zeros((3, 4), dtype=np.float32))
        assert out.shape == (1, 3, 4)

    def test_copy_made(self):
        a = np.zeros((1, 2, 2), dtype=np.float32)
        out = as_batch(a)
        out[0, 0, 0] = 1
        assert a[0, 0, 0] == 0

    def test_integers_promoted_to_float(self):
        out = as_batch(np.ones((1, 2, 2), dtype=np.int32))
        assert out.dtype == np.float64

    def test_bad_rank_rejected(self):
        with pytest.raises(ShapeError):
            as_batch(np.zeros(4, dtype=np.float32))
        with pytest.raises(ShapeError):
            as_batch(np.zeros((2, 2, 2, 2), dtype=np.float32))

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            as_batch(np.zeros((0, 2, 2), dtype=np.float32))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ShapeError):
            as_batch(np.zeros((1, 2, 2), dtype=np.float16))

    def test_square_and_tall_checks(self):
        check_square_batch(np.zeros((1, 3, 3)))
        check_tall_batch(np.zeros((1, 4, 3)))
        with pytest.raises(ShapeError):
            check_square_batch(np.zeros((1, 3, 4)))
        with pytest.raises(ShapeError):
            check_tall_batch(np.zeros((1, 3, 4)))


class TestErrorMetrics:
    def test_perfect_qr_scores_zero(self):
        q = np.eye(4, dtype=np.float64)[None]
        r = np.triu(np.ones((1, 4, 4)))
        a = q @ r
        assert qr_reconstruction_error(a, q, r) < 1e-15
        assert orthogonality_error(q) < 1e-15

    def test_worst_problem_dominates(self):
        q = np.tile(np.eye(3), (2, 1, 1))
        r = np.tile(np.eye(3), (2, 1, 1))
        a = q @ r
        a[1] *= 2  # corrupt the second problem
        assert qr_reconstruction_error(a, q, r) > 0.4

    def test_triangular_error_detects_violation(self):
        r = np.triu(np.ones((1, 4, 4)))
        assert triangular_error(r) == 0
        r[0, 2, 0] = 0.5
        assert triangular_error(r) == 0.5
        low = np.tril(np.ones((1, 4, 4)))
        assert triangular_error(low, lower=True) == 0

    def test_solve_residual_relative_to_rhs(self):
        a = np.eye(3)[None]
        b = np.ones((1, 3)) * 10
        x = b.copy()
        assert solve_residual(a, x, b) == 0
        assert solve_residual(a, x * 1.1, b) == pytest.approx(0.1, rel=1e-6)

    def test_lu_error_uses_unit_lower(self):
        lu = np.triu(np.ones((1, 3, 3))) + np.tril(np.ones((1, 3, 3)) * 0.5, -1)
        lower = np.tril(lu, -1) + np.eye(3)
        upper = np.triu(lu)
        a = lower @ upper
        assert lu_reconstruction_error(a, lu) < 1e-15


class TestGenerators:
    def test_random_batch_deterministic(self):
        a = random_batch(2, 3, 4, seed=7)
        b = random_batch(2, 3, 4, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_random_batch_dtype(self):
        assert random_batch(1, 2, 2, dtype=np.complex64).dtype == np.complex64
        assert random_batch(1, 2, 2, dtype=np.float64).dtype == np.float64

    def test_complex_batch_has_imaginary_parts(self):
        a = random_batch(1, 4, 4, dtype=np.complex64)
        assert np.abs(a.imag).max() > 0

    @given(
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_diagonal_dominance_property(self, n, seed):
        a = diagonally_dominant_batch(2, n, dtype=np.float64, seed=seed)
        idx = np.arange(n)
        diag = np.abs(a[:, idx, idx])
        off = np.abs(a).sum(axis=2) - diag
        assert (diag > off).all()

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_hermitian_property(self, seed):
        a = hermitian_batch(2, 6, dtype=np.complex128, seed=seed)
        np.testing.assert_allclose(a, np.swapaxes(a.conj(), 1, 2))

    def test_rhs_batch_shape(self):
        assert rhs_batch(3, 5, nrhs=2).shape == (3, 5, 2)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ShapeError):
            random_batch(0, 3, 3)
        with pytest.raises(ShapeError):
            diagonally_dominant_batch(1, 0)

    def test_generator_accepts_rng_instance(self):
        rng = np.random.default_rng(3)
        a = random_batch(1, 2, 2, seed=rng)
        b = random_batch(1, 2, 2, seed=np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
