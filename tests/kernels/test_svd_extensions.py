"""SVD extension, GJ inversion, and the per-block least-squares kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.batched import (
    diagonally_dominant_batch,
    gauss_jordan_invert,
    jacobi_svd,
    least_squares,
    random_batch,
)
from repro.kernels.device import per_block_least_squares


class TestJacobiSvd:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.complex64,
                                       np.complex128])
    def test_singular_values_match_lapack(self, dtype):
        a = random_batch(4, 12, 6, dtype=dtype, seed=1)
        res = jacobi_svd(a, fast_math=False)
        ref = np.stack([np.linalg.svd(a[i], compute_uv=False) for i in range(4)])
        tol = 1e-5 if np.dtype(dtype).itemsize <= 8 else 1e-12
        assert np.abs(res.s - ref).max() < tol * ref.max()

    def test_reconstruction(self):
        a = random_batch(3, 15, 7, dtype=np.float64, seed=2)
        res = jacobi_svd(a, fast_math=False)
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-12)

    def test_u_columns_orthonormal(self):
        a = random_batch(3, 15, 7, dtype=np.complex128, seed=3)
        u = jacobi_svd(a, fast_math=False).u
        gram = np.swapaxes(u.conj(), 1, 2) @ u
        np.testing.assert_allclose(
            gram, np.broadcast_to(np.eye(7), gram.shape), atol=1e-12
        )

    def test_v_unitary(self):
        a = random_batch(3, 10, 5, dtype=np.float64, seed=4)
        vh = jacobi_svd(a, fast_math=False).vh
        gram = vh @ np.swapaxes(vh.conj(), 1, 2)
        np.testing.assert_allclose(
            gram, np.broadcast_to(np.eye(5), gram.shape), atol=1e-12
        )

    def test_singular_values_descending_nonnegative(self):
        a = random_batch(4, 9, 5, dtype=np.float64, seed=5)
        s = jacobi_svd(a, fast_math=False).s
        assert (s >= 0).all()
        assert (np.diff(s, axis=1) <= 1e-12).all()

    def test_rank_deficiency_tolerated(self):
        a = random_batch(2, 10, 4, dtype=np.float64, seed=6)
        a[:, :, 3] = a[:, :, 0]
        res = jacobi_svd(a, fast_math=False)
        assert res.s[:, -1].max() < 1e-12
        np.testing.assert_allclose(res.reconstruct(), a, atol=1e-12)

    def test_square_matrix(self):
        a = random_batch(2, 6, 6, dtype=np.float64, seed=7)
        res = jacobi_svd(a, fast_math=False)
        ref = np.stack([np.linalg.svd(a[i], compute_uv=False) for i in range(2)])
        np.testing.assert_allclose(res.s, ref, atol=1e-12)

    def test_wide_rejected(self):
        with pytest.raises(ShapeError):
            jacobi_svd(random_batch(2, 4, 8, dtype=np.float64))

    def test_zero_sweeps_rejected(self):
        with pytest.raises(ValueError):
            jacobi_svd(random_batch(1, 4, 2, dtype=np.float64), max_sweeps=0)

    @given(
        m=st.integers(min_value=2, max_value=16),
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_frobenius_norm_preserved(self, m, n, seed):
        if m < n:
            m, n = n, m
        a = random_batch(2, m, n, dtype=np.float64, seed=seed)
        s = jacobi_svd(a, fast_math=False).s
        np.testing.assert_allclose(
            np.sqrt((s**2).sum(axis=1)), np.linalg.norm(a, axis=(1, 2)), rtol=1e-10
        )


class TestGaussJordanInvert:
    def test_inverse_identity(self):
        a = diagonally_dominant_batch(4, 10, dtype=np.float64)
        inv = gauss_jordan_invert(a, fast_math=False)
        assert inv.all_solved
        prod = a @ inv.x
        np.testing.assert_allclose(
            prod, np.broadcast_to(np.eye(10), prod.shape), atol=1e-12
        )

    def test_matches_numpy(self):
        a = diagonally_dominant_batch(3, 6, dtype=np.float64)
        inv = gauss_jordan_invert(a, fast_math=False)
        ref = np.stack([np.linalg.inv(a[i]) for i in range(3)])
        np.testing.assert_allclose(inv.x, ref, atol=1e-12)

    def test_singular_flagged(self):
        a = diagonally_dominant_batch(2, 4, dtype=np.float32)
        a[1] = 0
        inv = gauss_jordan_invert(a)
        assert inv.not_solved.tolist() == [False, True]

    def test_complex(self):
        a = diagonally_dominant_batch(2, 5, dtype=np.complex64)
        inv = gauss_jordan_invert(a)
        prod = a @ inv.x
        assert np.abs(prod - np.eye(5)).max() < 1e-4


class TestPerBlockLeastSquares:
    def test_matches_batched(self):
        a = random_batch(3, 40, 12, dtype=np.float32, seed=1)
        b = random_batch(3, 40, 1, dtype=np.float32, seed=2)[:, :, 0]
        dev = per_block_least_squares(a, b)
        ref = least_squares(a.copy(), b.copy())
        np.testing.assert_allclose(dev.output, ref.x, atol=1e-5)
        np.testing.assert_allclose(dev.extra, ref.residual_norms, atol=1e-5)

    def test_complex_tall(self):
        a = random_batch(2, 30, 8, dtype=np.complex64, seed=3)
        b = random_batch(2, 30, 1, dtype=np.complex64, seed=4)[:, :, 0]
        dev = per_block_least_squares(a, b)
        ref = least_squares(a.copy(), b.copy())
        np.testing.assert_allclose(dev.output, ref.x, atol=1e-4)

    def test_exact_fit_zero_residual(self):
        a = random_batch(2, 20, 5, dtype=np.float32, seed=5)
        x_true = random_batch(2, 5, 1, dtype=np.float32, seed=6)
        b = (a @ x_true)[:, :, 0]
        dev = per_block_least_squares(a, b)
        assert dev.extra.max() < 1e-4

    def test_timing_present(self):
        a = random_batch(2, 24, 8, dtype=np.float32, seed=7)
        b = random_batch(2, 24, 1, dtype=np.float32, seed=8)[:, :, 0]
        dev = per_block_least_squares(a, b)
        assert dev.cycles > 0
        assert dev.launch.throughput_gflops(1000) > 0

    def test_shape_validation(self):
        a = random_batch(2, 8, 12, dtype=np.float32)  # wide
        with pytest.raises(ValueError):
            per_block_least_squares(a, np.zeros((2, 8), dtype=np.float32))
        tall = random_batch(2, 12, 8, dtype=np.float32)
        with pytest.raises(ValueError):
            per_block_least_squares(tall, np.zeros((2, 11), dtype=np.float32))
