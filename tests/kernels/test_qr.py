"""Batched Householder QR and least squares."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.batched import (
    apply_qt,
    diagonally_dominant_batch,
    least_squares,
    orthogonality_error,
    qr_factor,
    qr_reconstruction_error,
    qr_solve,
    qr_unpack,
    random_batch,
    rhs_batch,
    solve_residual,
    triangular_error,
)

DTYPES = [np.float32, np.float64, np.complex64, np.complex128]


class TestFactorization:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("shape", [(8, 8), (16, 8), (56, 56), (80, 16), (240, 66)])
    def test_reconstruction_and_orthogonality(self, dtype, shape):
        m, n = shape
        a = random_batch(3, m, n, dtype=dtype, seed=m + n)
        f = qr_factor(a, fast_math=False)
        q = qr_unpack(f)
        tol = 1e-5 if np.dtype(dtype).itemsize <= 8 else 1e-13
        assert qr_reconstruction_error(a, q, f.r()) < tol
        assert orthogonality_error(q) < tol * 50

    def test_r_is_upper_triangular(self):
        f = qr_factor(random_batch(4, 12, 8, dtype=np.float32))
        assert triangular_error(f.r()) == 0

    def test_r_diagonal_real_for_complex(self):
        # The LAPACK convention makes beta real even for complex input.
        f = qr_factor(random_batch(3, 10, 6, dtype=np.complex64))
        diag = f.r()[:, range(6), range(6)]
        assert np.abs(diag.imag).max() == 0

    def test_sign_convention_negates_positive_leading_entry(self):
        # beta = -sign(Re(alpha)) * norm: a positive column flips.
        a = np.abs(random_batch(2, 6, 3, dtype=np.float32))
        f = qr_factor(a)
        assert (f.r()[:, 0, 0] < 0).all()

    def test_fast_math_accuracy_cost_is_bounded(self):
        a = random_batch(8, 32, 32, dtype=np.float32, seed=1)
        fast = qr_factor(a, fast_math=True)
        ieee = qr_factor(a, fast_math=False)
        rel = np.abs(fast.r() - ieee.r()).max() / np.abs(ieee.r()).max()
        assert 0 < rel < 1e-4  # differs, but only in the bottom bits

    def test_zero_column_handled(self):
        a = random_batch(2, 8, 4, dtype=np.float32)
        a[:, :, 1] = 0.0
        f = qr_factor(a)
        q = qr_unpack(f)
        assert np.isfinite(f.packed).all()
        assert qr_reconstruction_error(a, q, f.r()) < 1e-5

    def test_wide_matrix_rejected(self):
        with pytest.raises(ShapeError):
            qr_factor(random_batch(2, 4, 8, dtype=np.float32))

    def test_matches_numpy_qr_magnitudes(self):
        # Signs may differ by convention; |R| must agree.
        a = random_batch(3, 10, 6, dtype=np.float64, seed=2)
        f = qr_factor(a, fast_math=False)
        for i in range(3):
            _, r_np = np.linalg.qr(a[i])
            np.testing.assert_allclose(np.abs(f.r()[i][:6]), np.abs(r_np), atol=1e-10)


class TestApplyQt:
    def test_qt_b_matches_explicit(self):
        a = random_batch(3, 12, 6, dtype=np.float64, seed=4)
        b = random_batch(3, 12, 2, dtype=np.float64, seed=5)
        f = qr_factor(a, fast_math=False)
        explicit = np.swapaxes(qr_unpack(f).conj(), 1, 2) @ b
        np.testing.assert_allclose(apply_qt(f, b)[:, :6], explicit, atol=1e-10)

    def test_preserves_norm(self):
        a = random_batch(3, 12, 6, dtype=np.float64, seed=4)
        b = random_batch(3, 12, 1, dtype=np.float64, seed=5)
        f = qr_factor(a, fast_math=False)
        qtb = apply_qt(f, b)
        np.testing.assert_allclose(
            np.linalg.norm(qtb, axis=(1, 2)),
            np.linalg.norm(b, axis=(1, 2)),
            rtol=1e-10,
        )

    def test_vector_rhs_squeezed(self):
        a = random_batch(2, 8, 4, dtype=np.float32)
        b = random_batch(2, 8, 1, dtype=np.float32)[:, :, 0]
        assert apply_qt(qr_factor(a), b).shape == (2, 8)


class TestSolve:
    def test_square_solve(self):
        a = diagonally_dominant_batch(5, 16, dtype=np.float32)
        b = rhs_batch(5, 16, dtype=np.float32)
        x = qr_solve(a, b)
        assert solve_residual(a, x, b) < 5e-5

    def test_solve_is_stable_without_dominance(self):
        # Unlike unpivoted LU/GJ, QR solves arbitrary nonsingular systems.
        a = random_batch(5, 16, 16, dtype=np.float64, seed=8)
        b = rhs_batch(5, 16, dtype=np.float64)
        x = qr_solve(a, b, fast_math=False)
        assert solve_residual(a, x, b) < 1e-10


class TestLeastSquares:
    def test_matches_numpy_lstsq(self):
        a = random_batch(4, 24, 8, dtype=np.float64, seed=6)
        b = random_batch(4, 24, 1, dtype=np.float64, seed=7)
        res = least_squares(a, b, fast_math=False)
        ref = np.stack([np.linalg.lstsq(a[i], b[i], rcond=None)[0] for i in range(4)])
        np.testing.assert_allclose(res.x, ref, atol=1e-10)

    def test_residual_norms_reported(self):
        a = random_batch(4, 24, 8, dtype=np.float64, seed=6)
        b = random_batch(4, 24, 1, dtype=np.float64, seed=7)
        res = least_squares(a, b, fast_math=False)
        # Explicit (batch, m, nrhs) input keeps a per-RHS norm axis.
        assert res.residual_norms.shape == (4, 1)
        ref = np.linalg.norm(a @ res.x - b, axis=1)
        np.testing.assert_allclose(res.residual_norms, ref, rtol=1e-8)

    def test_exact_fit_has_zero_residual(self):
        a = random_batch(3, 20, 5, dtype=np.float64, seed=9)
        x_true = random_batch(3, 5, 1, dtype=np.float64, seed=10)
        b = a @ x_true
        res = least_squares(a, b, fast_math=False)
        np.testing.assert_allclose(res.x, x_true, atol=1e-10)
        assert res.residual_norms.max() < 1e-10

    def test_square_case_residual_zero_shape(self):
        a = diagonally_dominant_batch(2, 6, dtype=np.float64)
        b = rhs_batch(2, 6, dtype=np.float64)[:, :, 0]  # vector RHS
        res = least_squares(a, b)
        assert res.residual_norms.shape == (2,)
        assert (res.residual_norms == 0).all()

    def test_rhs_shape_mismatch(self):
        a = random_batch(2, 10, 4, dtype=np.float32)
        with pytest.raises(ShapeError):
            least_squares(a, np.zeros((2, 9), dtype=np.float32))


class TestProperties:
    @given(
        m=st.integers(min_value=2, max_value=24),
        n=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_qr_invariants(self, m, n, seed):
        if m < n:
            m, n = n, m
        a = random_batch(2, m, n, dtype=np.float64, seed=seed)
        f = qr_factor(a, fast_math=False)
        q = qr_unpack(f)
        assert qr_reconstruction_error(a, q, f.r()) < 1e-10
        assert orthogonality_error(q) < 1e-10
        assert triangular_error(f.r()) == 0

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_complex_qr_invariants(self, seed):
        a = random_batch(2, 12, 7, dtype=np.complex128, seed=seed)
        f = qr_factor(a, fast_math=False)
        q = qr_unpack(f)
        assert qr_reconstruction_error(a, q, f.r()) < 1e-10
        assert orthogonality_error(q) < 1e-10

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_r_norm_equals_a_norm(self, seed):
        # Orthogonal transforms preserve Frobenius norm columnwise.
        a = random_batch(2, 10, 5, dtype=np.float64, seed=seed)
        f = qr_factor(a, fast_math=False)
        np.testing.assert_allclose(
            np.linalg.norm(f.r(), axis=1),
            np.linalg.norm(a, axis=1),
            rtol=1e-9,
        )
