"""Batched Jacobi Hermitian eigensolver (the MRI extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.batched import hermitian_batch, jacobi_eigh


class TestCorrectness:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.complex64,
                                       np.complex128])
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_eigenvalues_match_lapack(self, dtype, n):
        a = hermitian_batch(4, n, dtype=dtype, seed=n)
        res = jacobi_eigh(a.copy())
        ref = np.stack([np.linalg.eigvalsh(a[i]) for i in range(4)])
        tol = 2e-5 if np.dtype(dtype).itemsize <= 8 else 1e-12
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(res.eigenvalues - ref).max() < tol * scale

    def test_eigenvectors_satisfy_definition(self):
        a = hermitian_batch(5, 8, dtype=np.complex128, seed=1)
        res = jacobi_eigh(a.copy())
        av = a @ res.eigenvectors
        vw = res.eigenvectors * res.eigenvalues[:, None, :]
        assert np.abs(av - vw).max() < 1e-12

    def test_eigenvectors_orthonormal(self):
        a = hermitian_batch(5, 8, dtype=np.complex128, seed=2)
        v = jacobi_eigh(a.copy()).eigenvectors
        gram = np.swapaxes(v.conj(), 1, 2) @ v
        np.testing.assert_allclose(
            gram, np.broadcast_to(np.eye(8), gram.shape), atol=1e-12
        )

    def test_eigenvalues_ascending(self):
        a = hermitian_batch(4, 12, dtype=np.float64, seed=3)
        w = jacobi_eigh(a.copy()).eigenvalues
        assert (np.diff(w, axis=1) >= 0).all()

    def test_diagonal_matrix_is_fixed_point(self):
        d = np.zeros((2, 5, 5))
        d[:, np.arange(5), np.arange(5)] = [[3, 1, 4, 1, 5], [2, 7, 1, 8, 2]]
        res = jacobi_eigh(d.copy())
        assert res.sweeps_used == 1
        np.testing.assert_allclose(res.eigenvalues, np.sort(d.diagonal(0, 1, 2)))

    def test_trace_preserved(self):
        a = hermitian_batch(4, 10, dtype=np.float64, seed=4)
        w = jacobi_eigh(a.copy()).eigenvalues
        np.testing.assert_allclose(
            w.sum(axis=1), np.trace(a, axis1=1, axis2=2).real, rtol=1e-10
        )

    def test_convergence_reported(self):
        a = hermitian_batch(2, 8, dtype=np.float64, seed=5)
        res = jacobi_eigh(a.copy())
        assert 1 <= res.sweeps_used <= 16
        assert res.off_diagonal_norm < 1e-8


class TestValidation:
    def test_non_hermitian_rejected(self):
        a = np.arange(18, dtype=np.float64).reshape(2, 3, 3)
        with pytest.raises(ShapeError):
            jacobi_eigh(a)

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            jacobi_eigh(np.zeros((2, 3, 4)))

    def test_zero_sweeps_rejected(self):
        a = hermitian_batch(1, 4, dtype=np.float64)
        with pytest.raises(ValueError):
            jacobi_eigh(a, max_sweeps=0)


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_eigenvalue_property(self, n, seed):
        a = hermitian_batch(2, n, dtype=np.float64, seed=seed)
        res = jacobi_eigh(a.copy())
        ref = np.stack([np.linalg.eigvalsh(a[i]) for i in range(2)])
        scale = max(1.0, np.abs(ref).max())
        assert np.abs(res.eigenvalues - ref).max() < 1e-10 * scale

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_similarity_preserves_frobenius_norm(self, seed):
        a = hermitian_batch(2, 6, dtype=np.complex128, seed=seed)
        w = jacobi_eigh(a.copy()).eigenvalues
        np.testing.assert_allclose(
            np.sqrt((w**2).sum(axis=1)),
            np.linalg.norm(a, axis=(1, 2)),
            rtol=1e-10,
        )
