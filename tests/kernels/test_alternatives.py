"""Alternative QR algorithms and the Section III-C stability claims."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, SingularMatrixError
from repro.kernels.batched import (
    cholesky_factor,
    cholesky_qr,
    givens_qr,
    gram_schmidt_qr,
    hermitian_batch,
    modified_gram_schmidt_qr,
    orthogonality_error,
    qr_factor,
    qr_reconstruction_error,
    qr_unpack,
    random_batch,
    triangular_error,
)

ALTERNATIVES = [cholesky_qr, gram_schmidt_qr, modified_gram_schmidt_qr, givens_qr]


def conditioned_batch(kappa: float, m: int = 30, n: int = 8, seed: int = 0):
    """One matrix with singular values spanning exactly ``kappa``."""
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    sv = np.logspace(0, -np.log10(kappa), n)
    return ((u * sv) @ v.T)[None]


class TestCholesky:
    def test_reconstruction_real(self):
        a = hermitian_batch(4, 10, dtype=np.float64, seed=1)
        spd = a @ np.swapaxes(a, 1, 2) + 10 * np.eye(10)
        chol = cholesky_factor(spd, fast_math=False)
        np.testing.assert_allclose(
            chol @ np.swapaxes(chol.conj(), 1, 2), spd, atol=1e-10
        )

    def test_reconstruction_complex(self):
        a = hermitian_batch(4, 8, dtype=np.complex128, seed=2)
        hpd = a @ np.swapaxes(a.conj(), 1, 2) + 8 * np.eye(8)
        chol = cholesky_factor(hpd, fast_math=False)
        np.testing.assert_allclose(
            chol @ np.swapaxes(chol.conj(), 1, 2), hpd, atol=1e-10
        )

    def test_lower_triangular(self):
        spd = np.eye(6, dtype=np.float32)[None] * 4.0
        chol = cholesky_factor(spd)
        assert triangular_error(chol, lower=True) == 0

    def test_indefinite_rejected(self):
        a = -np.eye(4, dtype=np.float64)[None]
        with pytest.raises(SingularMatrixError):
            cholesky_factor(a)

    def test_matches_numpy(self):
        a = hermitian_batch(3, 6, dtype=np.float64, seed=3)
        spd = a @ np.swapaxes(a, 1, 2) + 6 * np.eye(6)
        chol = cholesky_factor(spd, fast_math=False)
        ref = np.stack([np.linalg.cholesky(spd[i]) for i in range(3)])
        np.testing.assert_allclose(chol, ref, atol=1e-10)


class TestWellConditioned:
    """All four algorithms agree on easy problems."""

    @pytest.mark.parametrize("algorithm", ALTERNATIVES)
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_reconstruction_and_orthogonality(self, algorithm, dtype):
        a = random_batch(3, 20, 8, dtype=dtype, seed=4)
        res = algorithm(a, fast_math=False)
        assert qr_reconstruction_error(a, res.q, res.r) < 1e-10
        assert orthogonality_error(res.q) < 1e-10
        assert triangular_error(res.r) < 1e-12

    @pytest.mark.parametrize("algorithm", ALTERNATIVES)
    def test_r_magnitudes_match_householder(self, algorithm):
        a = random_batch(2, 16, 6, dtype=np.float64, seed=5)
        res = algorithm(a, fast_math=False)
        house = qr_factor(a.copy(), fast_math=False).r()
        np.testing.assert_allclose(np.abs(res.r), np.abs(house), atol=1e-9)

    @pytest.mark.parametrize("algorithm", ALTERNATIVES)
    def test_wide_rejected(self, algorithm):
        with pytest.raises(ShapeError):
            algorithm(random_batch(2, 4, 8, dtype=np.float64))

    @pytest.mark.parametrize("algorithm", ALTERNATIVES)
    def test_float32_works(self, algorithm):
        a = random_batch(2, 12, 5, dtype=np.float32, seed=6)
        res = algorithm(a)
        assert qr_reconstruction_error(a, res.q, res.r) < 1e-4


class TestSectionIIICStabilityClaims:
    """'Cholesky QR and Gram-Schmidt are numerically unstable, so we are
    limited to using either Givens rotations or Householder reflectors.'"""

    KAPPA = 1e7

    def _orth(self, algorithm):
        a = conditioned_batch(self.KAPPA)
        try:
            return orthogonality_error(algorithm(a, fast_math=False).q)
        except SingularMatrixError:
            return np.inf  # Cholesky can fail outright: also "unstable"

    def test_cholesky_qr_loses_orthogonality_like_kappa_squared(self):
        err = self._orth(cholesky_qr)
        assert err > 1e-4  # catastrophic at kappa=1e7 in double precision

    def test_classical_gram_schmidt_loses_orthogonality(self):
        err = self._orth(gram_schmidt_qr)
        assert err > 1e-8

    def test_modified_gram_schmidt_better_but_not_stable(self):
        cgs = self._orth(gram_schmidt_qr)
        mgs = self._orth(modified_gram_schmidt_qr)
        assert mgs < cgs
        assert mgs > 1e-13  # still proportional to kappa * eps

    def test_givens_stays_at_machine_precision(self):
        assert self._orth(givens_qr) < 1e-12

    def test_householder_stays_at_machine_precision(self):
        a = conditioned_batch(self.KAPPA)
        q = qr_unpack(qr_factor(a.copy(), fast_math=False))
        assert orthogonality_error(q) < 1e-12

    def test_stability_ranking(self):
        # The full ordering the paper's choice rests on.
        a = conditioned_batch(self.KAPPA)
        house = orthogonality_error(qr_unpack(qr_factor(a.copy(), fast_math=False)))
        givens = self._orth(givens_qr)
        mgs = self._orth(modified_gram_schmidt_qr)
        cgs = self._orth(gram_schmidt_qr)
        chol = self._orth(cholesky_qr)
        assert max(house, givens) < mgs < cgs < chol


class TestProperties:
    @given(
        m=st.integers(min_value=2, max_value=20),
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_givens_invariants(self, m, n, seed):
        if m < n:
            m, n = n, m
        a = random_batch(2, m, n, dtype=np.float64, seed=seed)
        res = givens_qr(a, fast_math=False)
        assert qr_reconstruction_error(a, res.q, res.r) < 1e-9
        assert orthogonality_error(res.q) < 1e-9

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_mgs_q_spans_a(self, seed):
        # Q Q^H A == A: the computed basis spans the input columns.
        a = random_batch(2, 15, 6, dtype=np.float64, seed=seed)
        q = modified_gram_schmidt_qr(a, fast_math=False).q
        proj = q @ (np.swapaxes(q.conj(), 1, 2) @ a)
        np.testing.assert_allclose(proj, a, atol=1e-8)
