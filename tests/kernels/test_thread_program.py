"""Unrolled per-thread programs: the compile-time story, executable."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import QUADRO_6000
from repro.kernels.batched import (
    diagonally_dominant_batch,
    lu_factor,
    qr_factor,
    random_batch,
)
from repro.kernels.device import (
    ThreadInterpreter,
    build_lu_program,
    build_qr_program,
)
from repro.model import lu_flops, qr_flops


class TestProgramStructure:
    def test_straight_line_register_indices_are_constants(self):
        prog = build_lu_program(4)
        for ins in prog.instructions:
            for reg in ins.registers():
                assert 0 <= reg < prog.num_registers

    def test_7x7_qr_fits_the_register_file(self):
        # The paper's threshold: 7x7 is the largest QR a thread can hold.
        prog = build_qr_program(7)
        assert prog.num_registers <= QUADRO_6000.max_registers_per_thread
        assert not prog.spills_on(QUADRO_6000)

    def test_8x8_qr_spills(self):
        # "For dimensions past 8 the problems no longer fit" (Figure 4).
        assert build_qr_program(8).spills_on(QUADRO_6000)

    def test_8x8_lu_spills(self):
        assert build_lu_program(8).spills_on(QUADRO_6000)

    def test_instruction_count_grows_cubically(self):
        lengths = {n: build_qr_program(n).length for n in (4, 8, 16)}
        # Doubling n should multiply arithmetic roughly 8x (asymptotic).
        assert lengths[16] / lengths[8] > 5
        assert lengths[8] / lengths[4] > 4

    def test_static_flops_close_to_formula(self):
        # The asymptotic formulas bracket the exact static counts: LU's
        # exact sum sits slightly below 2/3 n^3, QR's trace adds the
        # scale-factor overhead on top of 2mn^2 - 2/3 n^3.
        for n in (5, 7, 10):
            lu_count = build_lu_program(n).flop_count
            qr_count = build_qr_program(n).flop_count
            assert 0.7 * lu_flops(n) <= lu_count <= 1.1 * lu_flops(n)
            assert qr_flops(n, n) <= qr_count <= 1.4 * qr_flops(n, n)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            build_lu_program(0)
        with pytest.raises(ValueError):
            build_qr_program(-1)


class TestInterpreter:
    def test_lu_matches_batched_bitwise(self):
        a = diagonally_dominant_batch(8, 6, dtype=np.float32, seed=1)
        out = ThreadInterpreter(build_lu_program(6)).run(a)
        ref = lu_factor(a.copy())
        np.testing.assert_array_equal(out, ref.lu)

    def test_qr_matches_batched_to_rounding(self):
        a = random_batch(8, 6, 6, dtype=np.float32, seed=2)
        out = ThreadInterpreter(build_qr_program(6)).run(a)
        ref = qr_factor(a.copy())
        np.testing.assert_allclose(out, ref.packed, atol=2e-6)

    def test_ieee_mode_double_precision(self):
        a = random_batch(4, 5, 5, dtype=np.float64, seed=3)
        out = ThreadInterpreter(build_qr_program(5), fast_math=False).run(a)
        ref = qr_factor(a.copy(), fast_math=False)
        np.testing.assert_allclose(out, ref.packed, atol=1e-13)

    def test_single_matrix_accepted(self):
        a = diagonally_dominant_batch(1, 4, dtype=np.float32)[0]
        out = ThreadInterpreter(build_lu_program(4)).run(a)
        assert out.shape == (1, 4, 4)

    def test_wrong_shape_rejected(self):
        interp = ThreadInterpreter(build_lu_program(4))
        with pytest.raises(ValueError):
            interp.run(np.zeros((2, 3, 3), dtype=np.float32))

    def test_instruction_counter(self):
        prog = build_lu_program(4)
        interp = ThreadInterpreter(prog)
        interp.run(diagonally_dominant_batch(2, 4, dtype=np.float32))
        assert interp.instructions_executed == prog.length

    @given(
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_lu_equivalence_property(self, n, seed):
        a = diagonally_dominant_batch(2, n, dtype=np.float64, seed=seed)
        out = ThreadInterpreter(build_lu_program(n), fast_math=False).run(a)
        ref = lu_factor(a.copy(), fast_math=False)
        np.testing.assert_allclose(out, ref.lu, atol=1e-12)

    @given(
        n=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_qr_equivalence_property(self, n, seed):
        a = random_batch(2, n, n, dtype=np.float64, seed=seed)
        out = ThreadInterpreter(build_qr_program(n), fast_math=False).run(a)
        ref = qr_factor(a.copy(), fast_math=False)
        np.testing.assert_allclose(out, ref.packed, atol=1e-10)
