"""Device kernels: numerics identical to the batched layer, plus the
cycle accounting that regenerates Table V / Figure 8."""

import numpy as np
import pytest

from repro.kernels.batched import (
    diagonally_dominant_batch,
    gauss_jordan_solve,
    lu_factor,
    qr_factor,
    random_batch,
    rhs_batch,
    solve_residual,
)
from repro.kernels.device import (
    per_block_gauss_jordan,
    per_block_lu,
    per_block_qr,
    per_block_qr_solve,
    per_thread_factor,
)
from repro.model import ModelParameters, predict_per_block, predict_per_thread


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


class TestPerBlockLuNumerics:
    def test_matches_batched_bitwise(self):
        a = diagonally_dominant_batch(6, 24, dtype=np.float32, seed=1)
        dev = per_block_lu(a)
        ref = lu_factor(a.copy())
        np.testing.assert_array_equal(dev.output, ref.lu)
        np.testing.assert_array_equal(dev.extra, ref.not_solved)

    def test_complex_matches_batched(self):
        a = diagonally_dominant_batch(4, 16, dtype=np.complex64, seed=2)
        dev = per_block_lu(a)
        ref = lu_factor(a.copy())
        np.testing.assert_allclose(dev.output, ref.lu, atol=1e-5)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            per_block_lu(random_batch(2, 8, 6, dtype=np.float32))


class TestPerBlockQrNumerics:
    def test_matches_batched(self):
        a = random_batch(4, 24, 24, dtype=np.float32, seed=3)
        dev = per_block_qr(a)
        ref = qr_factor(a.copy())
        np.testing.assert_allclose(dev.output, ref.packed, atol=2e-4)
        np.testing.assert_allclose(dev.extra, ref.taus, atol=2e-4)

    def test_non_square_tall(self):
        a = random_batch(3, 80, 16, dtype=np.complex64, seed=4)
        dev = per_block_qr(a)
        ref = qr_factor(a.copy())
        np.testing.assert_allclose(dev.output, ref.packed, atol=2e-4)

    def test_wide_rejected(self):
        with pytest.raises(ValueError):
            per_block_qr(random_batch(2, 6, 8, dtype=np.float32))

    def test_solve_residual_small(self):
        a = diagonally_dominant_batch(5, 24, dtype=np.float32, seed=5)
        b = rhs_batch(5, 24, dtype=np.float32)[:, :, 0]
        res = per_block_qr_solve(a, b)
        assert solve_residual(a, res.output, b) < 5e-5

    def test_solve_shape_validation(self):
        a = diagonally_dominant_batch(2, 8, dtype=np.float32)
        with pytest.raises(ValueError):
            per_block_qr_solve(a, np.zeros((2, 7), dtype=np.float32))


class TestPerBlockGaussJordan:
    def test_matches_batched_bitwise(self):
        a = diagonally_dominant_batch(5, 16, dtype=np.float32, seed=6)
        b = rhs_batch(5, 16, dtype=np.float32)[:, :, 0]
        dev = per_block_gauss_jordan(a, b)
        ref = gauss_jordan_solve(a, b)
        np.testing.assert_array_equal(dev.output, ref.x)

    def test_flags_singular(self):
        a = diagonally_dominant_batch(3, 8, dtype=np.float32)
        a[1] = 0
        b = rhs_batch(3, 8, dtype=np.float32)[:, :, 0]
        dev = per_block_gauss_jordan(a, b)
        assert dev.extra.tolist() == [False, True, False]
        assert np.isnan(dev.output[1]).all()


class TestTableV:
    """Cycle counts for the 56x56 flagship size."""

    @pytest.fixture(scope="class")
    def lu56(self):
        return per_block_lu(diagonally_dominant_batch(2, 56, dtype=np.float32))

    @pytest.fixture(scope="class")
    def qr56(self):
        return per_block_qr(random_batch(2, 56, 56, dtype=np.float32))

    def test_lu_compute_cycles_band(self, lu56):
        # Table V: LU compute 68250 cycles; accept +-20%.
        compute = (
            lu56.cycles
            - lu56.phase_cycles("load")["load"]
            - lu56.phase_cycles("store")["store"]
        )
        assert 0.8 * 68250 < compute < 1.2 * 68250

    def test_qr_compute_cycles_band(self, qr56):
        # Table V: QR compute 150203 cycles; accept +-20%.
        compute = (
            qr56.cycles
            - qr56.phase_cycles("load")["load"]
            - qr56.phase_cycles("store")["store"]
        )
        assert 0.8 * 150203 < compute < 1.2 * 150203

    def test_load_store_cycles_band(self, qr56):
        # Table V: QR load 9120 / store 9762 cycles.
        load = qr56.phase_cycles("load")["load"]
        store = qr56.phase_cycles("store")["store"]
        assert 7000 < load < 11000
        assert 7000 < store < 11000

    def test_qr_slower_than_lu(self, lu56, qr56):
        assert qr56.cycles > lu56.cycles

    def test_112_problems_resident(self, qr56):
        # Section V-C: 14 x 8 = 112 problems simultaneously.
        assert qr56.launch.occupancy.blocks_per_chip == 112

    def test_gflops_band(self, qr56, lu56):
        assert 150 < qr56.launch.throughput_gflops(8000) < 230
        assert 140 < lu56.launch.throughput_gflops(8000) < 220


class TestFigure8Breakdown:
    @pytest.fixture(scope="class")
    def qr56(self):
        return per_block_qr(random_batch(2, 56, 56, dtype=np.float32))

    def test_seven_panels(self, qr56):
        assert len(qr56.panel_breakdown()) == 7

    def test_three_ops_per_panel(self, qr56):
        first = qr56.panel_breakdown()[0]
        assert set(first) == {
            "Form HH Vector",
            "Matrix-Vector Multiply",
            "Rank-1 Update",
        }

    def test_panels_shrink(self, qr56):
        totals = [sum(p.values()) for p in qr56.panel_breakdown()]
        assert totals == sorted(totals, reverse=True)

    def test_measured_exceeds_model_per_panel(self, qr56, params):
        # The engine includes bookkeeping overhead the analytic model
        # omits -- Figure 8's measured bars top the modeled ones.
        from repro.model import panel_breakdown as model_panels

        pred = predict_per_block(params, "qr", 56)
        measured = [sum(p.values()) for p in qr56.panel_breakdown()]
        modeled = [sum(p.values()) for p in model_panels(pred)]
        assert sum(measured) > sum(modeled)
        # ... but by less than 35%: the model is supposed to be accurate.
        assert sum(measured) < 1.35 * sum(modeled)


class TestFigure9Shapes:
    def test_measured_tracks_model_at_56(self, params):
        a = random_batch(2, 56, 56, dtype=np.float32)
        measured = per_block_qr(a).launch.throughput_gflops()
        predicted = predict_per_block(params, "qr", 56).gflops
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_spill_hurts_measured_but_not_model_at_64(self, params):
        a = random_batch(2, 64, 64, dtype=np.float32)
        measured = per_block_qr(a).launch.throughput_gflops()
        predicted = predict_per_block(params, "qr", 64).gflops
        # Figure 9: "false predictions at 64 ... due to register
        # spilling, which our model does not consider".
        assert measured < predicted * 0.9

    def test_thread_switch_drop_at_80(self):
        a64 = random_batch(2, 64, 64, dtype=np.float32)
        a80 = random_batch(2, 80, 80, dtype=np.float32)
        g64 = per_block_qr(a64).launch.throughput_gflops()
        g80 = per_block_qr(a80).launch.throughput_gflops()
        assert g80 < g64


class TestPerThread:
    def test_numerics_match_batched(self):
        a = random_batch(32, 6, 6, dtype=np.float32, seed=7)
        res = per_thread_factor(a, "qr")
        ref = qr_factor(a.copy())
        np.testing.assert_array_equal(res.output, ref.packed)

    def test_figure4_tracks_roofline_below_spill(self, params):
        for n in (3, 5, 7):
            a = random_batch(512, n, n, dtype=np.float32, seed=n)
            res = per_thread_factor(a, "qr")
            pred = predict_per_thread(params, "qr", n)
            assert res.gflops == pytest.approx(pred.gflops, rel=0.1)
            assert not res.spilled

    def test_figure4_collapse_past_8(self, params):
        a = random_batch(512, 10, 10, dtype=np.float32)
        res = per_thread_factor(a, "qr")
        pred = predict_per_thread(params, "qr", 10)
        assert res.spilled
        assert res.gflops < 0.6 * pred.gflops

    def test_lu_below_qr_gflops(self):
        a = random_batch(512, 6, 6, dtype=np.float32)
        qr = per_thread_factor(a, "qr")
        lu = per_thread_factor(a, "lu")
        assert lu.gflops < qr.gflops

    def test_unknown_kind_rejected(self):
        a = random_batch(4, 4, 4, dtype=np.float32)
        with pytest.raises(ValueError):
            per_thread_factor(a, "cholesky")


class TestFastMathCostEffect:
    def test_precise_math_slows_per_block_qr(self):
        a = random_batch(2, 32, 32, dtype=np.float32)
        fast = per_block_qr(a, fast_math=True)
        precise = per_block_qr(a, fast_math=False)
        # Section V-C: ~30% median penalty without hardware functions.
        assert precise.cycles > fast.cycles

    def test_overhead_accounting_toggle(self):
        a = random_batch(2, 16, 16, dtype=np.float32)
        with_oh = per_block_qr(a, account_overhead=True)
        without = per_block_qr(a, account_overhead=False)
        assert with_oh.cycles > without.cycles
        assert without.breakdown.get("overhead", 0) == 0


class TestPivotedPerBlockLu:
    def test_numerics_match_batched_pivoted(self):
        from repro.kernels.batched import lu_factor_pivot
        from repro.kernels.device import per_block_lu_pivot

        a = random_batch(3, 12, 12, dtype=np.float64, seed=21)
        dev = per_block_lu_pivot(a)
        ref = lu_factor_pivot(a.copy())
        np.testing.assert_array_equal(dev.output, ref.lu)
        np.testing.assert_array_equal(dev.extra, ref.perm)

    def test_handles_zero_leading_pivot(self):
        from repro.kernels.device import per_block_lu_pivot

        a = random_batch(2, 8, 8, dtype=np.float64, seed=22)
        a[:, 0, 0] = 0.0
        dev = per_block_lu_pivot(a)
        assert np.isfinite(dev.output).all()

    def test_costs_more_than_unpivoted(self):
        from repro.kernels.device import per_block_lu_pivot

        a = diagonally_dominant_batch(2, 32, dtype=np.float32)
        plain = per_block_lu(a).cycles
        pivoted = per_block_lu_pivot(a).cycles
        assert pivoted > 1.5 * plain  # the price of stability

    def test_pivot_phases_present(self):
        from repro.kernels.device import per_block_lu_pivot

        a = diagonally_dominant_batch(2, 16, dtype=np.float32)
        dev = per_block_lu_pivot(a)
        panels = dev.panel_breakdown()
        assert "Pivot Search" in panels[0]
        assert "Row Swap" in panels[0]

    def test_non_square_rejected(self):
        from repro.kernels.device import per_block_lu_pivot

        with pytest.raises(ValueError):
            per_block_lu_pivot(random_batch(2, 8, 6, dtype=np.float32))


class TestTinyAndSkinnyShapes:
    """Problems smaller than the thread grid still execute correctly
    (zero-padded tiles; padding is invariant under the updates)."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_tiny_qr(self, n):
        a = random_batch(2, n, n, dtype=np.float32, seed=n)
        dev = per_block_qr(a)
        ref = qr_factor(a.copy())
        np.testing.assert_allclose(dev.output, ref.packed, atol=1e-5)

    def test_single_column_qr(self):
        a = random_batch(2, 10, 1, dtype=np.float32)
        dev = per_block_qr(a)
        ref = qr_factor(a.copy())
        np.testing.assert_allclose(dev.output, ref.packed, atol=1e-5)

    def test_tiny_lu(self):
        a = diagonally_dominant_batch(2, 3, dtype=np.float32)
        dev = per_block_lu(a)
        ref = lu_factor(a.copy())
        np.testing.assert_array_equal(dev.output, ref.lu)

    def test_tiny_gauss_jordan(self):
        a = diagonally_dominant_batch(2, 3, dtype=np.float32)
        b = rhs_batch(2, 3, dtype=np.float32)[:, :, 0]
        dev = per_block_gauss_jordan(a, b)
        assert solve_residual(a, dev.output, b) < 1e-5

    def test_1x1_everything(self):
        a = np.full((2, 1, 1), 4.0, dtype=np.float32)
        qr = per_block_qr(a)
        lu = per_block_lu(a)
        np.testing.assert_array_equal(qr.output, a)
        np.testing.assert_array_equal(lu.output, a)


class TestPerBlockCholesky:
    def _spd(self, n, dtype, seed=1):
        from repro.kernels.batched import hermitian_batch

        h = hermitian_batch(3, n, dtype=dtype, seed=seed)
        return (h @ np.swapaxes(h.conj(), 1, 2) + n * np.eye(n)).astype(dtype)

    def test_matches_batched_cholesky(self):
        from repro.kernels.batched import cholesky_factor
        from repro.kernels.device import per_block_cholesky

        spd = self._spd(16, np.float32)
        dev = per_block_cholesky(spd)
        ref = cholesky_factor(spd.copy())
        np.testing.assert_allclose(dev.output, ref, atol=1e-4)

    def test_complex_hpd(self):
        from repro.kernels.device import per_block_cholesky

        spd = self._spd(12, np.complex64)
        dev = per_block_cholesky(spd)
        recon = dev.output @ np.swapaxes(dev.output.conj(), 1, 2)
        np.testing.assert_allclose(recon, spd, rtol=1e-3, atol=1e-3)

    def test_cheaper_than_lu(self):
        from repro.kernels.device import per_block_cholesky

        spd = self._spd(32, np.float32)
        chol = per_block_cholesky(spd).cycles
        lu = per_block_lu(spd.copy()).cycles
        assert chol < lu  # half the trailing work, cheaper column op

    def test_non_spd_flagged(self):
        from repro.kernels.device import per_block_cholesky

        bad = -np.eye(8, dtype=np.float32)[None].repeat(2, 0)
        dev = per_block_cholesky(bad)
        assert dev.extra.all()
        assert np.isnan(dev.output).all()

    def test_non_square_rejected(self):
        from repro.kernels.device import per_block_cholesky

        with pytest.raises(ValueError):
            per_block_cholesky(random_batch(2, 8, 6, dtype=np.float32))
