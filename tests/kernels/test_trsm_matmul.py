"""Triangular solves and batched matmul."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.batched import (
    batched_matmul,
    random_batch,
    solve_lower,
    solve_lower_unit,
    solve_upper,
)


def upper_batch(batch, n, dtype=np.float64, seed=0):
    a = np.triu(random_batch(batch, n, n, dtype=dtype, seed=seed))
    idx = np.arange(n)
    a[:, idx, idx] += np.sign(a[:, idx, idx].real) * 2 + (a[:, idx, idx] == 0) * 2
    return a


class TestTriangularSolves:
    def test_upper_matches_numpy(self):
        r = upper_batch(3, 8)
        b = random_batch(3, 8, 2, dtype=np.float64, seed=1)
        x = solve_upper(r, b, fast_math=False)
        ref = np.stack([np.linalg.solve(r[i], b[i]) for i in range(3)])
        np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_lower_matches_numpy(self):
        low = np.swapaxes(upper_batch(3, 8, seed=2), 1, 2)
        b = random_batch(3, 8, 2, dtype=np.float64, seed=3)
        x = solve_lower(low, b, fast_math=False)
        ref = np.stack([np.linalg.solve(low[i], b[i]) for i in range(3)])
        np.testing.assert_allclose(x, ref, atol=1e-10)

    def test_lower_unit_ignores_diagonal(self):
        low = np.swapaxes(upper_batch(2, 6, seed=4), 1, 2)
        unit = low.copy()
        idx = np.arange(6)
        unit[:, idx, idx] = 1
        b = random_batch(2, 6, 1, dtype=np.float64, seed=5)
        # solve_lower_unit must behave as if the diagonal were 1,
        # regardless of what is stored there.
        garbage = low.copy()
        garbage[:, idx, idx] = 123.0
        np.testing.assert_allclose(
            solve_lower_unit(garbage, b), solve_lower(unit, b, fast_math=False),
            atol=1e-10,
        )

    def test_vector_rhs_squeezed(self):
        r = upper_batch(2, 4)
        b = random_batch(2, 4, 1, dtype=np.float64)[:, :, 0]
        assert solve_upper(r, b, fast_math=False).shape == (2, 4)

    def test_complex_solves(self):
        r = upper_batch(2, 6, dtype=np.complex128, seed=6)
        b = random_batch(2, 6, 1, dtype=np.complex128, seed=7)
        x = solve_upper(r, b, fast_math=False)
        np.testing.assert_allclose(r @ x, b, atol=1e-10)

    def test_single_matrix_promoted(self):
        r = upper_batch(1, 4)[0]
        b = random_batch(1, 4, 1, dtype=np.float64)[0]
        x = solve_upper(r, b, fast_math=False)
        np.testing.assert_allclose(r @ x, b, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            solve_upper(np.zeros((2, 4, 3)), np.zeros((2, 4, 1)))
        with pytest.raises(ShapeError):
            solve_upper(np.zeros((2, 4, 4)), np.zeros((2, 5, 1)))

    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_solve_then_multiply_roundtrip(self, n, seed):
        r = upper_batch(2, n, seed=seed)
        b = random_batch(2, n, 1, dtype=np.float64, seed=seed + 1)
        x = solve_upper(r, b, fast_math=False)
        np.testing.assert_allclose(r @ x, b, atol=1e-8)


class TestBatchedMatmul:
    def test_plain_product(self):
        a = random_batch(3, 5, 4, dtype=np.float64)
        b = random_batch(3, 4, 6, dtype=np.float64, seed=1)
        np.testing.assert_allclose(batched_matmul(a, b), a @ b)

    def test_transposes(self):
        a = random_batch(2, 5, 4, dtype=np.float64)
        b = random_batch(2, 6, 5, dtype=np.float64, seed=1)
        out = batched_matmul(a, b, transpose_a=True, transpose_b=True)
        np.testing.assert_allclose(out, np.swapaxes(a, 1, 2) @ np.swapaxes(b, 1, 2))

    def test_conjugate_transpose(self):
        a = random_batch(2, 5, 3, dtype=np.complex128)
        b = random_batch(2, 5, 4, dtype=np.complex128, seed=1)
        out = batched_matmul(a, b, transpose_a=True, conjugate_a=True)
        np.testing.assert_allclose(out, np.swapaxes(a.conj(), 1, 2) @ b)

    def test_alpha_and_accumulate(self):
        a = random_batch(2, 3, 3, dtype=np.float64)
        b = random_batch(2, 3, 3, dtype=np.float64, seed=1)
        c = random_batch(2, 3, 3, dtype=np.float64, seed=2)
        out = batched_matmul(a, b, alpha=2.0, accumulate=c)
        np.testing.assert_allclose(out, 2 * (a @ b) + c)

    def test_broadcast_single_operand(self):
        a = random_batch(1, 3, 4, dtype=np.float64)
        b = random_batch(5, 4, 2, dtype=np.float64, seed=1)
        out = batched_matmul(a, b)
        assert out.shape == (5, 3, 2)
        np.testing.assert_allclose(out[2], a[0] @ b[2])

    def test_speech_shape(self):
        # The Section I speech workload: thousands of 79x16 multiplies.
        a = random_batch(100, 79, 16, dtype=np.float32)
        b = random_batch(100, 16, 8, dtype=np.float32, seed=1)
        assert batched_matmul(a, b).shape == (100, 79, 8)

    def test_shape_validation(self):
        a = random_batch(2, 3, 4, dtype=np.float64)
        with pytest.raises(ShapeError):
            batched_matmul(a, random_batch(2, 5, 2, dtype=np.float64))
        with pytest.raises(ShapeError):
            batched_matmul(a, random_batch(3, 4, 2, dtype=np.float64))
        with pytest.raises(ShapeError):
            batched_matmul(a, random_batch(2, 4, 2, dtype=np.float64),
                           accumulate=np.zeros((2, 3, 3)))
