"""Failure injection: pathological inputs must not crash or lie.

Register-resident kernels run without any runtime checks on silicon;
the library layer is where bad inputs get caught or propagated honestly.
These tests feed NaN/Inf/degenerate batches through every kernel and
assert the contract: no exceptions from finite control flow, poisoned
problems stay poisoned (no silent fake answers), healthy problems in the
same batch are untouched.
"""

import numpy as np

from repro.kernels.batched import (
    diagonally_dominant_batch,
    gauss_jordan_solve,
    jacobi_svd,
    least_squares,
    lu_factor,
    qr_factor,
    qr_solve,
    random_batch,
    rhs_batch,
    solve_residual,
)


def poison(a, problem=1, value=np.nan):
    a = a.copy()
    a[problem, 0, 0] = value
    return a


class TestNanPropagation:
    def test_lu_nan_stays_in_its_problem(self):
        a = poison(diagonally_dominant_batch(3, 8, dtype=np.float32))
        res = lu_factor(a)
        assert np.isnan(res.lu[1]).any()
        assert np.isfinite(res.lu[0]).all()
        assert np.isfinite(res.lu[2]).all()

    def test_qr_nan_stays_in_its_problem(self):
        with np.errstate(invalid="ignore"):
            a = poison(random_batch(3, 8, 8, dtype=np.float32))
            res = qr_factor(a)
        assert np.isnan(res.packed[1]).any()
        assert np.isfinite(res.packed[0]).all()

    def test_gj_nan_does_not_crash(self):
        a = poison(diagonally_dominant_batch(3, 6, dtype=np.float32))
        b = rhs_batch(3, 6, dtype=np.float32)[:, :, 0]
        with np.errstate(invalid="ignore"):
            res = gauss_jordan_solve(a, b)
        assert solve_residual(a[[0, 2]], res.x[[0, 2]], b[[0, 2]]) < 5e-5

    def test_inf_input_does_not_crash(self):
        a = poison(diagonally_dominant_batch(2, 6, dtype=np.float32), value=np.inf)
        with np.errstate(invalid="ignore", over="ignore"):
            res = lu_factor(a)
        assert np.isfinite(res.lu[0]).all()


class TestDegenerateBatches:
    def test_all_zero_matrix_qr(self):
        a = np.zeros((2, 6, 4), dtype=np.float32)
        res = qr_factor(a)
        assert np.isfinite(res.packed).all()
        assert (res.taus == 0).all()

    def test_all_zero_matrix_lu_flagged(self):
        a = np.zeros((2, 4, 4), dtype=np.float32)
        res = lu_factor(a)
        assert res.not_solved.all()

    def test_duplicate_columns_least_squares(self):
        a = random_batch(2, 12, 4, dtype=np.float64, seed=1)
        a[:, :, 3] = a[:, :, 0]  # exactly rank deficient
        b = random_batch(2, 12, 1, dtype=np.float64, seed=2)
        with np.errstate(invalid="ignore", divide="ignore"):
            res = least_squares(a, b, fast_math=False)
        # Rank deficiency surfaces as exploding coefficients along the
        # null space (the unregularized QR solve's honest behaviour); the
        # residual stays close to the true minimum because the blow-up
        # mostly cancels in the range space -- but cancellation costs a
        # few percent, which is the signal to use a rank-revealing solve.
        assert np.abs(res.x).max() > 1e10
        ref = np.stack(
            [np.linalg.lstsq(a[i], b[i], rcond=None)[0] for i in range(2)]
        )
        ours = np.linalg.norm(a @ res.x - b, axis=1)
        best = np.linalg.norm(a @ ref - b, axis=1)
        assert (ours < 1.15 * best).all()

    def test_huge_magnitudes_qr_solve(self):
        a = diagonally_dominant_batch(2, 6, dtype=np.float64) * 1e150
        b = rhs_batch(2, 6, dtype=np.float64)[:, :, 0] * 1e150
        x = qr_solve(a, b, fast_math=False)
        assert solve_residual(a, x, b) < 1e-8

    def test_tiny_magnitudes_qr(self):
        a = random_batch(2, 6, 6, dtype=np.float64, seed=3) * 1e-150
        res = qr_factor(a, fast_math=False)
        assert np.isfinite(res.packed).all()

    def test_svd_of_zero_matrix(self):
        a = np.zeros((2, 8, 3), dtype=np.float64)
        res = jacobi_svd(a, fast_math=False)
        assert (res.s == 0).all()
        assert np.isfinite(res.vh).all()


class TestDeviceKernelRobustness:
    def test_per_block_lu_with_poisoned_problem(self):
        from repro.kernels.device import per_block_lu

        a = poison(diagonally_dominant_batch(3, 16, dtype=np.float32))
        with np.errstate(invalid="ignore"):
            dev = per_block_lu(a)
        assert np.isfinite(dev.output[0]).all()
        assert np.isnan(dev.output[1]).any()

    def test_engine_costs_independent_of_values(self):
        # Branch-free kernels: poisoned data must not change the timing.
        from repro.kernels.device import per_block_qr

        clean = random_batch(2, 16, 16, dtype=np.float32, seed=4)
        with np.errstate(invalid="ignore"):
            dirty = per_block_qr(poison(clean))
        assert dirty.cycles == per_block_qr(clean).cycles
