"""Blocked (WY) Householder QR and the layout communication volumes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.kernels.batched import (
    QrFactors,
    blocked_qr_factor,
    build_t_factor,
    orthogonality_error,
    qr_factor,
    qr_reconstruction_error,
    qr_unpack,
    random_batch,
)


class TestBlockedQr:
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    @pytest.mark.parametrize("shape_nb", [(16, 12, 4), (20, 8, 3), (30, 13, 5)])
    def test_identical_factors_to_unblocked(self, dtype, shape_nb):
        m, n, nb = shape_nb
        a = random_batch(3, m, n, dtype=dtype, seed=m + nb)
        blocked = blocked_qr_factor(a.copy(), panel_width=nb, fast_math=False)
        ref = qr_factor(a.copy(), fast_math=False)
        np.testing.assert_allclose(blocked.packed, ref.packed, atol=1e-13)
        np.testing.assert_allclose(blocked.taus, ref.taus, atol=1e-13)

    def test_degenerate_panel_equals_unblocked(self):
        a = random_batch(2, 12, 9, dtype=np.float64, seed=1)
        blocked = blocked_qr_factor(a.copy(), panel_width=9, fast_math=False)
        ref = qr_factor(a.copy(), fast_math=False)
        np.testing.assert_allclose(blocked.packed, ref.packed, atol=1e-14)

    def test_q_from_blocked_factors_orthonormal(self):
        a = random_batch(2, 18, 10, dtype=np.float64, seed=2)
        blocked = blocked_qr_factor(a.copy(), panel_width=4, fast_math=False)
        q = qr_unpack(QrFactors(blocked.packed, blocked.taus))
        assert orthogonality_error(q) < 1e-12
        assert qr_reconstruction_error(a, q, blocked.r()) < 1e-12

    def test_t_factor_count(self):
        a = random_batch(1, 16, 10, dtype=np.float64)
        blocked = blocked_qr_factor(a, panel_width=4)
        assert len(blocked.t_factors) == 3  # panels of 4, 4, 2

    def test_t_factor_identity(self):
        # (I - V T V^H) must equal the product of the panel's reflectors.
        a = random_batch(1, 10, 4, dtype=np.float64, seed=3)
        f = qr_factor(a.copy(), fast_math=False)
        v = np.zeros((1, 10, 4))
        for k in range(4):
            v[:, k, k] = 1
            v[:, k + 1 :, k] = f.packed[:, k + 1 :, k]
        t = build_t_factor(v, f.taus)
        q_block = np.eye(10)[None] - v @ t @ np.swapaxes(v, 1, 2)
        q_ref = np.eye(10)[None]
        for k in range(4):
            vk = v[:, :, k][:, :, None]
            outer = vk @ np.swapaxes(vk, 1, 2)
            h = np.eye(10)[None] - f.taus[:, k, None, None] * outer
            q_ref = q_ref @ h
        np.testing.assert_allclose(q_block, q_ref, atol=1e-13)

    def test_invalid_panel_width(self):
        with pytest.raises(ShapeError):
            blocked_qr_factor(random_batch(1, 8, 4, dtype=np.float64), panel_width=0)

    @given(
        nb=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_any_panel_width_same_factors(self, nb, seed):
        a = random_batch(2, 14, 8, dtype=np.float64, seed=seed)
        blocked = blocked_qr_factor(a.copy(), panel_width=nb, fast_math=False)
        ref = qr_factor(a.copy(), fast_math=False)
        np.testing.assert_allclose(blocked.packed, ref.packed, atol=1e-12)


class TestCommunicationVolume:
    def test_column_cyclic_moves_least_data(self):
        from repro.layouts import compare_volumes

        for n in (16, 56, 96):
            v = compare_volumes(n)
            assert (
                v["column_cyclic"].total_words
                < v["cyclic2d"].total_words
                < v["row_cyclic"].total_words
            )

    def test_volume_does_not_decide_performance(self):
        # The classic tension: 1D column communicates least but loses on
        # time (serialized column work) -- volume is necessary context,
        # not the decision metric.
        from repro.layouts import compare_layouts, compare_volumes
        from repro.model import ModelParameters

        params = ModelParameters.paper_table_iv()
        n = 56
        volumes = compare_volumes(n)
        times = compare_layouts(params, n)
        assert volumes["column_cyclic"].total_words < volumes["cyclic2d"].total_words
        assert times["cyclic2d"].gflops > times["column_cyclic"].gflops

    def test_row_cyclic_dominated_by_reductions(self):
        from repro.layouts import qr_communication_volume

        v = qr_communication_volume("row_cyclic", 56)
        assert v.reduction_words > v.broadcast_words

    def test_words_per_flop_shrinks_with_n(self):
        from repro.layouts import qr_communication_volume

        a = qr_communication_volume("cyclic2d", 16).words_per_flop
        b = qr_communication_volume("cyclic2d", 96).words_per_flop
        assert b < a

    def test_validation(self):
        from repro.layouts import qr_communication_volume

        with pytest.raises(ValueError):
            qr_communication_volume("cyclic2d", 1)
        with pytest.raises(ValueError):
            qr_communication_volume("cyclic2d", 16, threads=48)
        with pytest.raises(ValueError):
            qr_communication_volume("hilbert", 16)
