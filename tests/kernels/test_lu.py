"""Batched LU (unpivoted + the pivoting extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SingularMatrixError
from repro.kernels.batched import (
    diagonally_dominant_batch,
    lu_factor,
    lu_factor_pivot,
    lu_reconstruction_error,
    lu_solve,
    lu_solve_pivot,
    random_batch,
    rhs_batch,
    solve_residual,
    triangular_error,
)


class TestFactorization:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 56])
    def test_reconstruction(self, n):
        a = diagonally_dominant_batch(6, n, dtype=np.float32, seed=n)
        res = lu_factor(a)
        assert res.all_solved
        assert lu_reconstruction_error(a, res.lu) < 5e-5

    def test_factors_are_triangular(self):
        a = diagonally_dominant_batch(4, 10, dtype=np.float32)
        res = lu_factor(a)
        assert triangular_error(res.upper()) == 0
        assert triangular_error(res.lower(), lower=True) == 0

    def test_unit_diagonal_in_lower(self):
        a = diagonally_dominant_batch(4, 10, dtype=np.float32)
        low = lu_factor(a).lower()
        idx = np.arange(10)
        np.testing.assert_array_equal(low[:, idx, idx], 1.0)

    def test_complex_reconstruction(self):
        a = diagonally_dominant_batch(4, 12, dtype=np.complex64)
        res = lu_factor(a)
        assert lu_reconstruction_error(a, res.lu) < 5e-5

    def test_double_precision(self):
        a = diagonally_dominant_batch(4, 16, dtype=np.float64)
        assert lu_reconstruction_error(a, lu_factor(a, fast_math=False).lu) < 1e-13

    def test_flags_zero_pivot(self):
        a = diagonally_dominant_batch(3, 4, dtype=np.float32)
        a[2, 0, 0] = 0.0
        res = lu_factor(a)
        assert res.not_solved.tolist() == [False, False, True]

    def test_raise_mode(self):
        a = diagonally_dominant_batch(1, 4, dtype=np.float32)
        a[0, 0, 0] = 0.0
        with pytest.raises(SingularMatrixError):
            lu_factor(a, on_singular="raise")

    def test_1x1_matrix(self):
        a = np.array([[[4.0]]], dtype=np.float32)
        res = lu_factor(a)
        assert res.lu[0, 0, 0] == 4.0
        assert res.all_solved


class TestSolve:
    def test_solve_matches_numpy(self):
        a = diagonally_dominant_batch(5, 12, dtype=np.float64)
        b = rhs_batch(5, 12, dtype=np.float64)
        x = lu_solve(lu_factor(a, fast_math=False), b, fast_math=False)
        ref = np.stack([np.linalg.solve(a[i], b[i]) for i in range(5)])
        np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-10)

    def test_solve_multi_rhs(self):
        a = diagonally_dominant_batch(4, 8, dtype=np.float32)
        b = rhs_batch(4, 8, nrhs=3, dtype=np.float32)
        x = lu_solve(lu_factor(a), b)
        assert solve_residual(a, x, b) < 5e-5


class TestPivoting:
    def test_handles_zero_leading_pivot(self):
        # Unpivoted LU fails here; pivoted must succeed.
        a = np.array([[[0.0, 1.0], [1.0, 1.0]]], dtype=np.float64)
        b = np.array([[2.0, 3.0]], dtype=np.float64)
        assert lu_factor(a.copy()).not_solved[0]
        res = lu_factor_pivot(a.copy())
        assert not res.not_solved[0]
        x = lu_solve_pivot(res, b)
        assert solve_residual(a, x, b) < 1e-12

    def test_general_matrices(self):
        a = random_batch(6, 16, 16, dtype=np.float64, seed=11)
        b = rhs_batch(6, 16, dtype=np.float64)
        x = lu_solve_pivot(lu_factor_pivot(a, fast_math=False), b, fast_math=False)
        assert solve_residual(a, x, b) < 1e-10

    def test_permutation_is_valid(self):
        a = random_batch(4, 8, 8, dtype=np.float32, seed=3)
        res = lu_factor_pivot(a)
        for perm in res.perm:
            assert sorted(perm.tolist()) == list(range(8))

    def test_pivoted_more_stable_than_unpivoted(self):
        # Near-zero pivots blow up the unpivoted growth factor.
        rng = np.random.default_rng(5)
        a = rng.standard_normal((8, 12, 12))
        a[:, 0, 0] = 1e-12
        b = rng.standard_normal((8, 12))
        x_piv = lu_solve_pivot(
            lu_factor_pivot(a.copy(), fast_math=False), b, fast_math=False
        )
        x_raw = lu_solve(lu_factor(a.copy(), fast_math=False), b, fast_math=False)
        assert solve_residual(a, x_piv, b) < 1e-8
        assert solve_residual(a, x_piv, b) < solve_residual(a, x_raw, b)


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstruction_property(self, n, seed):
        a = diagonally_dominant_batch(3, n, dtype=np.float64, seed=seed)
        res = lu_factor(a, fast_math=False)
        assert lu_reconstruction_error(a, res.lu) < 1e-10

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_pivoted_equals_unpivoted_on_dominant(self, seed):
        # Diagonal dominance makes the diagonal the natural pivot, so
        # both variants must solve equally well.
        a = diagonally_dominant_batch(3, 8, dtype=np.float64, seed=seed)
        b = rhs_batch(3, 8, dtype=np.float64, seed=seed)
        x1 = lu_solve(lu_factor(a, fast_math=False), b, fast_math=False)
        x2 = lu_solve_pivot(lu_factor_pivot(a, fast_math=False), b, fast_math=False)
        np.testing.assert_allclose(x1, x2, rtol=1e-8, atol=1e-10)
