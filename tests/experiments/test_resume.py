"""Checkpoint/resume: a SIGKILL'd sweep finishes bitwise-identically.

The engine's ``REPRO_EXPERIMENTS_KILL_AFTER=<n>`` hook SIGKILLs the
process right after the n-th cell hits the journal, so the interruption
point is deterministic -- no timers to race.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import run_spec, spec_from_dict
from repro.experiments.engine import journal_path

SRC = str(Path(__file__).parents[2] / "src")

DOC = {
    "experiment": {"name": "resumetest", "title": "resume unit sweep", "seed": 11},
    "axes": {
        "device": ["quadro6000"],
        "op": ["qr", "lu"],
        "size": [4, 8],
        "precision": ["float32"],
        "approach": ["cpu"],
    },
    "policy": {"batch": 8},
}

CHILD = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments import load_spec, run_spec

run_spec(load_spec({spec!r}), {out!r}, cache_dir={cache!r})
"""


def interrupted_run(tmp_path, kill_after, out_name="killed"):
    spec_file = tmp_path / "resumetest.json"
    spec_file.write_text(json.dumps(DOC))
    out_dir = tmp_path / out_name
    env = dict(os.environ)
    env["REPRO_EXPERIMENTS_KILL_AFTER"] = str(kill_after)
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            CHILD.format(
                src=SRC,
                spec=str(spec_file),
                out=str(out_dir),
                cache=str(tmp_path / "cache"),
            ),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    return out_dir


class TestSigkillResume:
    def test_journal_survives_the_kill(self, tmp_path):
        out_dir = interrupted_run(tmp_path, kill_after=2)
        journal = journal_path(out_dir)
        assert journal.exists()
        entries = [
            json.loads(line) for line in journal.read_text().splitlines() if line
        ]
        assert len(entries) == 2
        assert not (out_dir / "matrix.json").exists()

    def test_resume_completes_bitwise_identically(self, tmp_path):
        out_dir = interrupted_run(tmp_path, kill_after=2)
        spec = spec_from_dict(DOC)

        resumed = run_spec(spec, out_dir, cache_dir=tmp_path / "cache")
        assert resumed.resumed and resumed.ok
        assert not journal_path(out_dir).exists()

        fresh = run_spec(spec, tmp_path / "fresh", cache_dir=tmp_path / "cache")
        assert resumed.matrix_path.read_bytes() == fresh.matrix_path.read_bytes()

    def test_resume_skips_journaled_cells(self, tmp_path):
        out_dir = interrupted_run(tmp_path, kill_after=3)
        seen = []
        run_spec(
            spec_from_dict(DOC),
            out_dir,
            cache_dir=tmp_path / "cache",
            echo=seen.append,
        )
        # 3 of 4 cells restored: one "resuming" line plus the last cell.
        assert any("resuming: 3/4" in line for line in seen)
        executed = [line for line in seen if line.startswith("[")]
        assert len(executed) == 1

    def test_plan_change_discards_the_journal(self, tmp_path):
        out_dir = interrupted_run(tmp_path, kill_after=2)
        changed = json.loads(json.dumps(DOC))
        changed["experiment"]["seed"] = 12  # different operands -> new plan
        seen = []
        result = run_spec(
            spec_from_dict(changed),
            out_dir,
            cache_dir=tmp_path / "cache",
            echo=seen.append,
        )
        assert not result.resumed and result.ok
        assert not any("resuming" in line for line in seen)

    def test_no_resume_flag_reruns_from_scratch(self, tmp_path):
        out_dir = interrupted_run(tmp_path, kill_after=2)
        result = run_spec(
            spec_from_dict(DOC),
            out_dir,
            cache_dir=tmp_path / "cache",
            resume=False,
        )
        assert not result.resumed and result.ok

    def test_corrupt_journal_tail_tolerated(self, tmp_path):
        out_dir = interrupted_run(tmp_path, kill_after=2)
        journal = journal_path(out_dir)
        with journal.open("a") as fh:
            fh.write('{"fingerprint": "trunc')  # torn final write
        result = run_spec(
            spec_from_dict(DOC), out_dir, cache_dir=tmp_path / "cache"
        )
        assert result.resumed and result.ok
        fresh = run_spec(
            spec_from_dict(DOC), tmp_path / "fresh", cache_dir=tmp_path / "cache"
        )
        assert result.matrix_path.read_bytes() == fresh.matrix_path.read_bytes()
