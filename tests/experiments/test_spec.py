"""Spec parsing, validation, and deterministic expansion."""

import json
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    AXES,
    SpecError,
    expand_cells,
    load_spec,
    plan_fingerprint,
    spec_from_dict,
)


def base_doc(**overrides):
    doc = {
        "experiment": {"name": "unit", "title": "unit spec", "seed": 3},
        "axes": {
            "device": ["quadro6000"],
            "op": ["qr", "lu"],
            "size": [4, 8],
            "precision": ["float32"],
            "approach": ["cpu", "runtime"],
        },
        "policy": {"batch": 16},
    }
    doc.update(overrides)
    return doc


class TestValidation:
    def test_unknown_axis_rejected(self):
        doc = base_doc()
        doc["axes"]["frobnicate"] = ["yes"]
        with pytest.raises(SpecError, match="unknown axis"):
            spec_from_dict(doc)

    def test_unknown_axis_value_rejected(self):
        doc = base_doc()
        doc["axes"]["op"] = ["qr", "eigensolve"]
        with pytest.raises(SpecError, match="eigensolve"):
            spec_from_dict(doc)

    def test_unknown_device_rejected(self):
        doc = base_doc()
        doc["axes"]["device"] = ["tpu_v9"]
        with pytest.raises(SpecError, match="tpu_v9"):
            spec_from_dict(doc)

    def test_missing_required_axis_rejected(self):
        doc = base_doc()
        del doc["axes"]["precision"]
        with pytest.raises(SpecError, match="precision"):
            spec_from_dict(doc)

    def test_duplicate_axis_values_rejected(self):
        doc = base_doc()
        doc["axes"]["size"] = [4, 4]
        with pytest.raises(SpecError, match="duplicate"):
            spec_from_dict(doc)

    def test_unknown_top_level_table_rejected(self):
        doc = base_doc(extras={"x": 1})
        with pytest.raises(SpecError):
            spec_from_dict(doc)

    def test_bad_tolerance_rejected(self):
        doc = base_doc(gates={"tolerance": 1.5})
        with pytest.raises(SpecError, match="tolerance"):
            spec_from_dict(doc)

    def test_bad_fault_plan_rejected(self):
        doc = base_doc()
        doc["axes"]["fault_plan"] = ["explode@everywhere"]
        with pytest.raises(SpecError):
            spec_from_dict(doc)


class TestRoundTrip:
    def test_to_dict_round_trips(self):
        doc = base_doc(
            exclude=[{"approach": "runtime", "size": [8]}],
            include=[
                {
                    "device": "quadro6000",
                    "op": "qr",
                    "size": 16,
                    "precision": "float32",
                    "approach": "cpu",
                }
            ],
        )
        doc["policy"]["override"] = [{"match": {"approach": "runtime"}, "batch": 64}]
        spec = spec_from_dict(doc)
        again = spec_from_dict(spec.to_dict())
        assert again == spec
        assert [c.id for c in expand_cells(again)[0]] == [
            c.id for c in expand_cells(spec)[0]
        ]

    def test_json_spec_loads(self, tmp_path):
        path = tmp_path / "unit.json"
        path.write_text(json.dumps(base_doc()))
        spec = load_spec(path)
        assert spec.name == "unit"
        assert spec.axes["op"] == ("qr", "lu")

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="stdlib tomllib needs Python 3.11+"
    )
    def test_checked_in_toml_specs_load(self):
        from pathlib import Path

        specs = sorted(
            path
            for path in (
                Path(__file__).parents[2] / "benchmarks" / "specs"
            ).glob("*.toml")
            # slo_*.toml are alert-rule specs (repro.observe.alerts), not
            # experiment matrices; they have their own round-trip test.
            if not path.name.startswith("slo_")
        )
        assert specs, "no checked-in specs found"
        for path in specs:
            spec = load_spec(path)
            cells, _pruned = expand_cells(spec)
            assert cells, f"{path.name} expands to an empty plan"


class TestExpansion:
    def test_expansion_is_deterministic(self):
        a = spec_from_dict(base_doc())
        b = spec_from_dict(base_doc())
        cells_a, pruned_a = expand_cells(a)
        cells_b, pruned_b = expand_cells(b)
        assert [c.id for c in cells_a] == [c.id for c in cells_b]
        assert pruned_a == pruned_b
        assert plan_fingerprint(a, cells_a) == plan_fingerprint(b, cells_b)

    def test_cells_sorted_by_canonical_axis_order(self):
        cells, _ = expand_cells(spec_from_dict(base_doc()))
        assert [c.sort_key() for c in cells] == sorted(c.sort_key() for c in cells)

    def test_exclude_drops_matching_cells(self):
        doc = base_doc(exclude=[{"approach": "runtime", "size": [8]}])
        ids = [c.id for c in expand_cells(spec_from_dict(doc))[0]]
        assert not any("n8" in i and "runtime" in i for i in ids)
        assert any("n8" in i and "cpu" in i for i in ids)

    def test_include_adds_and_deduplicates(self):
        extra = {
            "device": "quadro6000",
            "op": "qr",
            "size": 32,
            "precision": "float32",
            "approach": "cpu",
        }
        dup = dict(extra, size=4)  # already in the grid
        doc = base_doc(include=[extra, dup])
        ids = [c.id for c in expand_cells(spec_from_dict(doc))[0]]
        assert "quadro6000/qr/n32/float32/cpu/none" in ids
        assert len(ids) == len(set(ids))

    def test_fault_cells_pruned_off_runtime(self):
        doc = base_doc()
        doc["axes"]["fault_plan"] = ["none", "crash@0"]
        cells, pruned = expand_cells(spec_from_dict(doc))
        faulted = [c for c in cells if c.fault_plan != "none"]
        assert faulted and all(c.approach == "runtime" for c in faulted)
        assert pruned == 4  # crash@0 x cpu x {qr,lu} x {4,8}

    def test_policy_override_applies(self):
        doc = base_doc()
        doc["policy"]["override"] = [{"match": {"approach": "runtime"}, "batch": 64}]
        cells, _ = expand_cells(spec_from_dict(doc))
        batches = {c.approach: c.policy.batch for c in cells}
        assert batches == {"cpu": 16, "runtime": 64}


_AXIS_VALUES = {
    "device": ["quadro6000", "gtx480"],
    "op": ["qr", "lu", "cholesky"],
    "size": [4, 8, 16],
    "precision": ["float32", "float64"],
    "approach": ["runtime", "cpu"],
    "fault_plan": ["none", "crash@0"],
}


def _canonical_plan():
    doc = base_doc()
    doc["axes"] = {axis: list(_AXIS_VALUES[axis]) for axis in AXES}
    spec = spec_from_dict(doc)
    cells, _ = expand_cells(spec)
    return [c.id for c in cells], plan_fingerprint(spec, cells)


_CANONICAL_IDS, _CANONICAL_FP = _canonical_plan()


class TestPlanStability:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_plan_stable_under_axis_and_value_reordering(self, data):
        doc = base_doc()
        axis_order = data.draw(st.permutations(list(_AXIS_VALUES)))
        doc["axes"] = {
            axis: data.draw(st.permutations(_AXIS_VALUES[axis]))
            for axis in axis_order
        }
        spec = spec_from_dict(doc)
        cells, _ = expand_cells(spec)
        assert [c.id for c in cells] == _CANONICAL_IDS
        assert plan_fingerprint(spec, cells) == _CANONICAL_FP
