"""Direction-aware gate semantics on matrix artifacts."""

import json

import pytest

from repro.experiments import (
    MATRIX_SCHEMA,
    artifact_gauges,
    compare_gauges,
    diff_artifacts,
    load_artifact,
)


def g(value, direction):
    return {"value": value, "direction": direction}


def matrix_doc(cells):
    return {
        "schema": MATRIX_SCHEMA,
        "kind": "experiment-matrix",
        "experiment": "unit",
        "cells": cells,
    }


class TestCompareGauges:
    def test_higher_gauge_drop_beyond_tolerance_fails(self):
        deltas, _ = compare_gauges(
            {"x.measured_gflops": g(89.0, "higher")},
            {"x.measured_gflops": g(100.0, "higher")},
            0.10,
        )
        (delta,) = deltas
        assert not delta.ok and "<" in delta.detail

    def test_higher_gauge_drop_within_tolerance_passes(self):
        deltas, _ = compare_gauges(
            {"x.measured_gflops": g(91.0, "higher")},
            {"x.measured_gflops": g(100.0, "higher")},
            0.10,
        )
        assert deltas[0].ok

    def test_higher_gauge_improvement_passes(self):
        deltas, _ = compare_gauges(
            {"x.measured_gflops": g(150.0, "higher")},
            {"x.measured_gflops": g(100.0, "higher")},
            0.10,
        )
        assert deltas[0].ok

    def test_lower_gauge_rise_beyond_tolerance_fails(self):
        deltas, _ = compare_gauges(
            {"x.rel_err": g(0.2, "lower")}, {"x.rel_err": g(0.1, "lower")}, 0.10
        )
        assert not deltas[0].ok

    def test_lower_gauge_gets_absolute_slack_at_zero(self):
        # A perfect model's error may wiggle in its last float bits.
        deltas, _ = compare_gauges(
            {"x.rel_err": g(5e-10, "lower")}, {"x.rel_err": g(0.0, "lower")}, 0.10
        )
        assert deltas[0].ok

    def test_exact_gauge_must_match(self):
        deltas, _ = compare_gauges(
            {"x.chunks": g(3.0, "exact")}, {"x.chunks": g(4.0, "exact")}, 0.10
        )
        assert not deltas[0].ok and "exact" in deltas[0].detail

    def test_status_flip_fails(self):
        deltas, _ = compare_gauges(
            {"x.status": g("failed", "status")},
            {"x.status": g("ok", "status")},
            0.10,
        )
        assert not deltas[0].ok

    def test_missing_gauge_fails(self):
        deltas, _ = compare_gauges({}, {"x.measured_gflops": g(100.0, "higher")}, 0.10)
        assert not deltas[0].ok and deltas[0].detail == "missing from current run"

    def test_new_gauge_is_note_not_failure(self):
        deltas, new = compare_gauges(
            {"y.measured_gflops": g(10.0, "higher")}, {}, 0.10
        )
        assert deltas == [] and new == ["y.measured_gflops"]


class TestArtifactGauges:
    def test_statuses_and_ok_gauges_flattened(self):
        doc = matrix_doc(
            [
                {
                    "id": "a",
                    "status": "ok",
                    "gauges": {"measured_gflops": 10.0, "chunks": 2},
                },
                {"id": "b", "status": "unsupported"},
            ]
        )
        gauges = artifact_gauges(doc)
        assert gauges["a.status"]["value"] == "ok"
        assert gauges["b.status"]["value"] == "unsupported"
        assert gauges["a.measured_gflops"]["direction"] == "higher"
        assert gauges["a.chunks"]["direction"] == "exact"
        assert "b.measured_gflops" not in gauges

    def test_non_ok_cells_contribute_no_numbers(self):
        doc = matrix_doc(
            [{"id": "b", "status": "failed", "gauges": {"measured_gflops": 1.0}}]
        )
        assert set(artifact_gauges(doc)) == {"b.status"}


class TestDiffAndLoad:
    def test_diff_artifacts_report(self):
        base = matrix_doc(
            [{"id": "a", "status": "ok", "gauges": {"measured_gflops": 100.0}}]
        )
        curr = matrix_doc(
            [
                {"id": "a", "status": "ok", "gauges": {"measured_gflops": 50.0}},
                {"id": "c", "status": "ok", "gauges": {"measured_gflops": 1.0}},
            ]
        )
        report = diff_artifacts(curr, base, 0.10)
        assert not report.ok
        assert any(line.startswith("REGRESSION a.measured_gflops") for line in report.lines())
        assert any("new gauge" in line for line in report.lines())

    def test_load_artifact_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not an experiment matrix"):
            load_artifact(path)

    def test_load_artifact_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        doc = matrix_doc([])
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="schema"):
            load_artifact(path)
