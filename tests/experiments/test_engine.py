"""Engine determinism, artifacts, history, and the CLI."""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import run_spec, spec_from_dict
from repro.experiments.cli import main
from repro.experiments.engine import journal_path


def small_doc(**overrides):
    doc = {
        "experiment": {"name": "enginetest", "title": "engine unit sweep", "seed": 5},
        "axes": {
            "device": ["quadro6000"],
            "op": ["qr", "lu"],
            "size": [4, 8],
            "precision": ["float32"],
            "approach": ["cpu"],
        },
        "policy": {"batch": 8},
    }
    doc.update(overrides)
    return doc


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "enginetest.json"
    path.write_text(json.dumps(small_doc()))
    return path


class TestRunSpec:
    def test_matrix_is_bitwise_deterministic(self, tmp_path):
        spec = spec_from_dict(small_doc())
        a = run_spec(spec, tmp_path / "a", cache_dir=tmp_path / "cache")
        b = run_spec(spec, tmp_path / "b", cache_dir=tmp_path / "cache")
        assert a.matrix_path.read_bytes() == b.matrix_path.read_bytes()
        assert a.ok and a.counts.get("ok") == 4
        assert not journal_path(tmp_path / "a").exists()

    def test_run_sidecar_keeps_wall_out_of_matrix(self, tmp_path):
        spec = spec_from_dict(small_doc())
        result = run_spec(spec, tmp_path / "out", cache_dir=tmp_path / "cache")
        matrix = json.loads(result.matrix_path.read_text())
        run = json.loads(result.run_path.read_text())
        assert "wall_s" not in json.dumps(matrix["cells"])
        assert run["wall_s"] > 0
        assert [c["id"] for c in matrix["cells"]] == [c.id for c in result.cells]

    def test_unsupported_combination_is_recorded_not_fatal(self, tmp_path):
        doc = small_doc()
        doc["axes"]["op"] = ["qr", "cholesky"]  # cholesky needs the runtime
        result = run_spec(
            spec_from_dict(doc), tmp_path / "out", cache_dir=tmp_path / "cache"
        )
        by_status = result.counts
        assert by_status["unsupported"] == 2
        assert result.ok  # unsupported is not a failure

    def test_budget_overrun_reported(self, tmp_path):
        doc = small_doc(policy={"batch": 8, "budget_s": 1e-12})
        result = run_spec(
            spec_from_dict(doc), tmp_path / "out", cache_dir=tmp_path / "cache"
        )
        assert set(result.budget_overruns) == {c.id for c in result.cells}

    def test_history_gets_one_sweep_record(self, tmp_path):
        spec = spec_from_dict(small_doc())
        history = tmp_path / "history.jsonl"
        run_spec(
            spec, tmp_path / "out", cache_dir=tmp_path / "cache", history=history
        )
        records = [
            json.loads(line) for line in history.read_text().splitlines() if line
        ]
        assert len(records) == 1
        (record,) = records
        assert record["kind"] == "sweep"
        assert {c["label"] for c in record["cells"]} == {c.id for c in spec_cells(spec)}
        assert record["summary"]["mode"] == "sweep"


def spec_cells(spec):
    from repro.experiments import expand_cells

    return expand_cells(spec)[0]


class TestCli:
    def test_plan_prints_cells_and_fingerprint(self, spec_path, capsys):
        assert main(["plan", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "quadro6000" in out and "qr" in out
        assert "plan fingerprint:" in out

    def test_run_then_diff_round_trip(self, spec_path, tmp_path, capsys):
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        assert main(["run", str(spec_path), "--out", str(out_a)]) == 0
        assert main(["run", str(spec_path), "--out", str(out_b)]) == 0
        code = main(
            ["diff", str(out_a / "matrix.json"), str(out_b / "matrix.json")]
        )
        assert code == 0

    def test_strict_fails_against_inflated_baseline(self, spec_path, tmp_path, capsys):
        out_dir = tmp_path / "real"
        assert main(["run", str(spec_path), "--out", str(out_dir)]) == 0
        doc = json.loads((out_dir / "matrix.json").read_text())
        for cell in doc["cells"]:
            for key in cell.get("gauges", {}):
                if key == "measured_gflops":
                    cell["gauges"][key] *= 10.0
        baseline = tmp_path / "inflated.json"
        baseline.write_text(json.dumps(doc))
        code = main(
            [
                "run",
                str(spec_path),
                "--out",
                str(tmp_path / "gated"),
                "--strict",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_strict_without_baseline_exits_2(self, spec_path, tmp_path, capsys):
        code = main(
            ["run", str(spec_path), "--out", str(tmp_path / "out"), "--strict"]
        )
        assert code == 2

    def test_invalid_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"axes": {}}))
        assert main(["plan", str(bad)]) == 2

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="stdlib tomllib needs Python 3.11+"
    )
    def test_checked_in_smoke_spec_gates_against_its_baseline(self, tmp_path):
        spec = (
            Path(__file__).parents[2] / "benchmarks" / "specs" / "ci_smoke.toml"
        )
        code = main(
            [
                "run",
                str(spec),
                "--out",
                str(tmp_path / "smoke"),
                "--cache-dir",
                str(tmp_path / "cache"),
                "--strict",
            ]
        )
        assert code == 0
