"""Figure 7: layout cost comparison for the QR solver."""

import pytest

from repro.layouts import compare_layouts, estimate_qr_solve
from repro.model import ModelParameters


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


class TestFigure7:
    @pytest.mark.parametrize("n", [32, 48, 64, 80, 96])
    def test_2d_dominates_1d_layouts(self, params, n):
        # "The 2D layout dominates 1D layouts in all tested cases."
        r = compare_layouts(params, n)
        assert r["cyclic2d"].gflops > r["column_cyclic"].gflops
        assert r["cyclic2d"].gflops > r["row_cyclic"].gflops

    @pytest.mark.parametrize("n", [16, 32, 48, 64, 80, 96])
    def test_column_cyclic_beats_row_cyclic(self, params, n):
        # "Due to the large amount of column-wise communication inherent
        # in the Householder QR algorithm, one expects the 1D
        # column-cyclic layout to be considerably faster than ... row."
        r = compare_layouts(params, n)
        assert r["column_cyclic"].gflops > r["row_cyclic"].gflops

    def test_2d_and_column_close_at_smallest_size(self, params):
        # At n=16 the reduction overhead of 2D roughly cancels its
        # parallelism advantage; the curves touch in Figure 7.
        r = compare_layouts(params, 16)
        assert r["cyclic2d"].gflops == pytest.approx(
            r["column_cyclic"].gflops, rel=0.15
        )

    def test_figure7_magnitudes(self, params):
        # Figure 7's y-axis: 2D reaches ~180-200 GFLOPS at n=96.
        est = estimate_qr_solve(params, "cyclic2d", 96)
        assert 150 < est.gflops < 220

    def test_all_curves_rise_with_n_midrange(self, params):
        for kind in ("cyclic2d", "column_cyclic", "row_cyclic"):
            vals = [
                estimate_qr_solve(params, kind, n).gflops for n in (16, 32, 48, 64)
            ]
            assert vals == sorted(vals)


class TestEstimator:
    def test_cycles_positive(self, params):
        assert estimate_qr_solve(params, "cyclic2d", 32).cycles > 0

    def test_unknown_layout_rejected(self, params):
        with pytest.raises(ValueError):
            estimate_qr_solve(params, "hilbert_curve", 32)

    def test_tiny_system_rejected(self, params):
        with pytest.raises(ValueError):
            estimate_qr_solve(params, "cyclic2d", 1)

    def test_precise_math_slower(self, params):
        fast = estimate_qr_solve(params, "cyclic2d", 48, fast_math=True)
        precise = estimate_qr_solve(params, "cyclic2d", 48, fast_math=False)
        assert precise.cycles > fast.cycles

    def test_result_records_inputs(self, params):
        est = estimate_qr_solve(params, "row_cyclic", 48)
        assert est.layout == "row_cyclic"
        assert est.n == 48
        assert est.threads == 64
