"""Functional layout semantics: ownership, scatter/gather round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LaunchConfigurationError, ShapeError
from repro.layouts import ColumnCyclic, Cyclic2D, RowCyclic

LAYOUTS = [
    lambda m, n: Cyclic2D(m, n, 16),
    lambda m, n: RowCyclic(m, n, 16),
    lambda m, n: ColumnCyclic(m, n, 16),
]


def random_batch(m, n, batch=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((batch, m, n)).astype(np.float32)


class TestCyclic2D:
    def test_figure6_ownership(self):
        # Figure 6 left: a 4x4 grid over an 8x8 matrix repeats 0..15.
        lay = Cyclic2D(8, 8, 16)
        assert lay.owner(0, 0) == 0
        assert lay.owner(0, 3) == 3
        assert lay.owner(3, 0) == 12
        assert lay.owner(4, 4) == 0  # cyclic wrap
        assert lay.owner(1, 2) == 6

    def test_owner_coords_match_listing5(self):
        lay = Cyclic2D(56, 56, 64)
        tid, col = lay.owner_coords(9, 17)
        assert (tid, col) == (1, 1)

    def test_local_index(self):
        lay = Cyclic2D(56, 56, 64)
        assert lay.local_index(9, 17) == (1, 2)

    def test_scatter_places_elements_per_listing4(self):
        lay = Cyclic2D(8, 8, 16)
        a = random_batch(8, 8, batch=1)
        tiles = lay.scatter(a)
        # tiles[b, ti, tj, ii, jj] == A[b, ti + ii*rdim, tj + jj*rdim]
        for ti in range(4):
            for tj in range(4):
                for ii in range(2):
                    for jj in range(2):
                        expected = a[0, ti + 4 * ii, tj + 4 * jj]
                        assert tiles[0, ti, tj, ii, jj] == expected

    def test_roundtrip(self):
        lay = Cyclic2D(8, 8, 16)
        a = random_batch(8, 8)
        np.testing.assert_array_equal(lay.gather(lay.scatter(a)), a)

    def test_roundtrip_with_padding(self):
        lay = Cyclic2D(7, 5, 16)  # not multiples of rdim=4
        a = random_batch(7, 5)
        np.testing.assert_array_equal(lay.gather(lay.scatter(a)), a)

    def test_padding_is_zero(self):
        lay = Cyclic2D(7, 5, 16)
        tiles = lay.scatter(np.ones((1, 7, 5), dtype=np.float32))
        assert tiles.sum() == 35  # only real elements are nonzero

    def test_non_square_thread_count_rejected(self):
        with pytest.raises(LaunchConfigurationError):
            Cyclic2D(8, 8, 48)

    def test_elements_per_thread(self):
        assert Cyclic2D(56, 56, 64).elements_per_thread() == 49

    def test_perfect_load_balance_when_divisible(self):
        assert Cyclic2D(56, 56, 64).load_balance() == 1.0

    def test_complex_dtype_roundtrip(self):
        lay = Cyclic2D(6, 6, 4)
        rng = np.random.default_rng(1)
        re = rng.standard_normal((2, 6, 6))
        im = rng.standard_normal((2, 6, 6))
        a = (re + 1j * im).astype(np.complex64)
        np.testing.assert_array_equal(lay.gather(lay.scatter(a)), a)


class TestRowCyclic:
    def test_figure6_ownership(self):
        # Figure 6 right: row i belongs to thread i mod p.
        lay = RowCyclic(16, 16, 16)
        for i in range(16):
            assert lay.owner(i, 5) == i

    def test_roundtrip(self):
        lay = RowCyclic(10, 7, 4)
        a = random_batch(10, 7)
        np.testing.assert_array_equal(lay.gather(lay.scatter(a)), a)

    def test_row_is_single_owner(self):
        lay = RowCyclic(12, 8, 4)
        assert len(lay.row_owners(3)) == 1

    def test_column_spans_all_threads(self):
        lay = RowCyclic(12, 8, 4)
        assert len(lay.column_owners(0)) == 4


class TestColumnCyclic:
    def test_ownership(self):
        lay = ColumnCyclic(8, 16, 4)
        assert lay.owner(3, 5) == 1
        assert lay.owner(0, 4) == 0

    def test_roundtrip(self):
        lay = ColumnCyclic(9, 11, 4)
        a = random_batch(9, 11)
        np.testing.assert_array_equal(lay.gather(lay.scatter(a)), a)

    def test_column_is_single_owner(self):
        lay = ColumnCyclic(8, 8, 4)
        assert len(lay.column_owners(3)) == 1

    def test_row_spans_all_threads(self):
        lay = ColumnCyclic(8, 8, 4)
        assert len(lay.row_owners(0)) == 4


class TestCommonBehaviour:
    @pytest.mark.parametrize("make", LAYOUTS)
    def test_single_matrix_promoted_to_batch(self, make):
        lay = make(8, 8)
        a = random_batch(8, 8, batch=1)
        out = lay.gather(lay.scatter(a[0]))
        np.testing.assert_array_equal(out[0], a[0])

    @pytest.mark.parametrize("make", LAYOUTS)
    def test_wrong_shape_rejected(self, make):
        lay = make(8, 8)
        with pytest.raises(ShapeError):
            lay.scatter(np.zeros((2, 7, 8), dtype=np.float32))
        with pytest.raises(ShapeError):
            lay.gather(np.zeros((3, 3), dtype=np.float32))

    @pytest.mark.parametrize("make", LAYOUTS)
    def test_out_of_range_owner_rejected(self, make):
        lay = make(8, 8)
        with pytest.raises(ShapeError):
            lay.owner(8, 0)

    @pytest.mark.parametrize("make", LAYOUTS)
    def test_invalid_dims_rejected(self, make):
        with pytest.raises(ShapeError):
            make(0, 8)

    @given(
        m=st.integers(min_value=1, max_value=24),
        n=st.integers(min_value=1, max_value=24),
        which=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, m, n, which):
        lay = LAYOUTS[which](m, n)
        rng = np.random.default_rng(m * 31 + n)
        a = rng.standard_normal((2, m, n)).astype(np.float32)
        np.testing.assert_array_equal(lay.gather(lay.scatter(a)), a)

    @given(
        m=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=1, max_value=16),
        which=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_element_owned_by_valid_thread(self, m, n, which):
        lay = LAYOUTS[which](m, n)
        owners = lay.ownership_map()
        assert owners.min() >= 0
        assert owners.max() < lay.threads

    @given(
        m=st.integers(min_value=16, max_value=32),
        n=st.integers(min_value=16, max_value=32),
    )
    @settings(max_examples=30, deadline=None)
    def test_scatter_preserves_every_element(self, m, n):
        lay = Cyclic2D(m, n, 16)
        a = np.arange(m * n, dtype=np.float32).reshape(1, m, n)
        tiles = lay.scatter(a)
        # All original values appear exactly once in the tiles.
        vals = np.sort(tiles.ravel())
        nonzero = vals[vals > 0]
        expected = np.arange(1, m * n, dtype=np.float32)
        np.testing.assert_array_equal(nonzero, expected)
