"""STAP application: datacube physics, weights, pipeline, Table VII."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.stap import (
    RT_STAP_CASES,
    RadarScenario,
    doppler_filterbank,
    generate_datacube,
    inject_target,
    qr_adaptive_weights,
    run_pipeline,
    run_stap_case,
    space_time_steering,
    spatial_steering,
    training_matrices,
)


@pytest.fixture(scope="module")
def small_cube():
    return generate_datacube(RadarScenario(channels=4, pulses=8, ranges=256))


class TestDatacube:
    def test_shape_and_dtype(self, small_cube):
        assert small_cube.data.shape == (4, 8, 256)
        assert small_cube.data.dtype == np.complex64

    def test_deterministic_given_seed(self):
        sc = RadarScenario(channels=2, pulses=4, ranges=64, seed=5)
        a = generate_datacube(sc).data
        b = generate_datacube(sc).data
        np.testing.assert_array_equal(a, b)

    def test_interference_dominates_noise(self, small_cube):
        # CNR/JNR >> 0 dB: cube power far above the unit noise floor.
        power = np.mean(np.abs(small_cube.data) ** 2)
        assert power > 10

    def test_snapshots_shape(self, small_cube):
        snaps = small_cube.snapshots()
        assert snaps.shape == (256, 32)

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ShapeError):
            RadarScenario(channels=0)

    def test_steering_vectors_unit_modulus(self):
        s = spatial_steering(8, 0.3)
        np.testing.assert_allclose(np.abs(s), 1.0, rtol=1e-6)
        v = space_time_steering(4, 8, 0.3, 0.1)
        assert v.shape == (32,)
        np.testing.assert_allclose(np.abs(v), 1.0, rtol=1e-6)

    def test_clutter_ridge_structure(self):
        # Clutter snapshots must correlate strongly with on-ridge
        # steering vectors and weakly with off-ridge ones.
        sc = RadarScenario(channels=4, pulses=8, ranges=128, jammer_angles=())
        cube = generate_datacube(sc)
        snaps = cube.snapshots()
        angle = 0.3
        on_ridge = space_time_steering(4, 8, angle, 0.5 * np.sin(angle))
        off_ridge = space_time_steering(4, 8, angle, -0.45)
        p_on = np.mean(np.abs(snaps @ on_ridge.conj()) ** 2)
        p_off = np.mean(np.abs(snaps @ off_ridge.conj()) ** 2)
        assert p_on > 10 * p_off


class TestDoppler:
    def test_filterbank_shape(self, small_cube):
        out = doppler_filterbank(small_cube)
        assert out.shape == (4, 8, 256)
        assert out.dtype == np.complex64

    def test_rect_window_is_plain_fft(self, small_cube):
        out = doppler_filterbank(small_cube, window="rect")
        ref = np.fft.fft(small_cube.data, axis=1).astype(np.complex64)
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_unknown_window_rejected(self, small_cube):
        with pytest.raises(ValueError):
            doppler_filterbank(small_cube, window="hamming8")

    def test_training_matrices_shape(self, small_cube):
        tm = training_matrices(small_cube, 6, 64, 32)
        assert tm.shape == (6, 64, 32)
        assert tm.dtype == np.complex64

    def test_training_dof_limit(self, small_cube):
        with pytest.raises(ShapeError):
            training_matrices(small_cube, 2, 64, 33)


class TestAdaptiveWeights:
    def test_unit_gain_constraint(self, small_cube):
        tm = training_matrices(small_cube, 4, 64, 32)
        s = space_time_steering(4, 8, 0.1, 0.25)
        w = qr_adaptive_weights(tm, s, fast_math=False)
        gains = np.einsum("bd,d->b", w.weights.conj(), s)
        np.testing.assert_allclose(gains, 1.0, atol=1e-4)

    def test_matches_covariance_mvdr(self, small_cube):
        tm = training_matrices(small_cube, 1, 128, 32).astype(np.complex128)
        s = space_time_steering(4, 8, 0.1, 0.25).astype(np.complex128)
        w = qr_adaptive_weights(tm, s, fast_math=False).weights[0]
        x = tm[0]
        cov = np.einsum("md,me->de", x, x.conj()) / x.shape[0]
        ref = np.linalg.solve(cov, s)
        ref /= np.conj(np.vdot(ref, s))
        np.testing.assert_allclose(w, ref, rtol=1e-6, atol=1e-8)

    def test_nulls_jammer(self, small_cube):
        # The adapted pattern must suppress the jammer direction by
        # orders of magnitude relative to the look direction.
        tm = training_matrices(small_cube, 1, 128, 32)
        look = space_time_steering(4, 8, 0.1, 0.25)
        jam = spatial_steering(4, 0.4)
        w = qr_adaptive_weights(tm, look, fast_math=False).weights[0]
        # Jammer subspace: spatial signature across all Doppler.
        jam_gain = 0.0
        for d in np.linspace(-0.5, 0.5, 8, endpoint=False):
            v = space_time_steering(4, 8, 0.4, d)
            jam_gain = max(jam_gain, abs(np.vdot(w, v)))
        assert jam_gain < 0.2  # look gain is exactly 1

    def test_precomputed_r_accepted(self, small_cube):
        from repro.kernels.batched import qr_factor

        tm = training_matrices(small_cube, 2, 64, 32)
        s = space_time_steering(4, 8, 0.1, 0.25)
        r = qr_factor(tm.copy(), fast_math=False).r()
        direct = qr_adaptive_weights(tm, s, fast_math=False)
        viaR = qr_adaptive_weights(tm, s, fast_math=False, r=r)
        np.testing.assert_allclose(direct.weights, viaR.weights, rtol=1e-4)

    def test_shape_validation(self, small_cube):
        tm = training_matrices(small_cube, 2, 64, 32)
        with pytest.raises(ShapeError):
            qr_adaptive_weights(tm, np.ones(31, dtype=np.complex64))
        with pytest.raises(ShapeError):
            qr_adaptive_weights(tm[:, :16, :], np.ones(32, dtype=np.complex64))


class TestPipeline:
    def test_adaptive_beats_unadapted(self):
        res = run_pipeline(RadarScenario(channels=4, pulses=8, ranges=256))
        assert res.improvement_db > 10

    def test_target_injection(self, small_cube):
        bumped = inject_target(small_cube, 0.1, 0.2, 50.0, range_gate=100)
        diff = np.abs(bumped.data - small_cube.data)
        assert diff[:, :, 100].min() > 0
        assert diff[:, :, :100].max() == 0


class TestTableVII:
    @pytest.fixture(scope="class")
    def rows(self):
        return [run_stap_case(c, numeric_batch=2) for c in RT_STAP_CASES]

    def test_gpu_beats_mkl_everywhere(self, rows):
        for row in rows:
            assert row.speedup > 1.5, row.case.label

    def test_speedup_ordering_matches_paper(self, rows):
        # Paper: 25x (80x16) > 3.6x (192x96) > 2.8x (240x66).
        by_label = {r.case.label: r.speedup for r in rows}
        assert by_label["RT_STAP 80x16"] > by_label["Imagine 192x96"]
        assert by_label["Imagine 192x96"] > by_label["RT_STAP 240x66"]

    def test_80x16_speedup_band(self, rows):
        # Paper: 25x; accept a broad band around it.
        s = rows[0].speedup
        assert 10 < s < 40

    def test_tall_cases_speedup_band(self, rows):
        # Paper: 2.8x and 3.6x; accept 1.5-8x.
        for row in rows[1:]:
            assert 1.5 < row.speedup < 8, row.case.label

    def test_methods_match_paper(self, rows):
        # 80x16 fits one block; the others go through tiling.
        assert rows[0].method == "one-problem-per-block"
        assert rows[1].method.startswith("tiled")
        assert rows[2].method.startswith("tiled")

    def test_r_factors_returned(self, rows):
        for row in rows:
            assert row.r.shape[-1] == row.case.cols
            assert np.isfinite(row.r).all()
