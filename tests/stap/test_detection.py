"""CFAR detection on the adapted output: the chain's binary observable."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.stap import (
    CfarConfig,
    RadarScenario,
    cell_averaging_cfar,
    generate_datacube,
    inject_target,
    qr_adaptive_weights,
    space_time_steering,
    training_matrices,
)


def adapted_power(target_gate=128, amplitude=40.0, seed=2012):
    sc = RadarScenario(channels=4, pulses=8, ranges=256, seed=seed)
    cube = inject_target(generate_datacube(sc), 0.1, 0.25, amplitude, target_gate)
    training = training_matrices(generate_datacube(sc), 1, 96, 32)
    steer = space_time_steering(4, 8, 0.1, 0.25)
    w = qr_adaptive_weights(training, steer).weights[0]
    return np.abs(cube.snapshots() @ w.conj()) ** 2


class TestCfarMechanics:
    def test_flat_noise_no_detections(self):
        rng = np.random.default_rng(0)
        power = rng.exponential(1.0, 512)
        res = cell_averaging_cfar(power, CfarConfig(threshold_factor=20.0))
        assert res.num_detections == 0

    def test_single_spike_detected(self):
        power = np.ones(256)
        power[100] = 100.0
        res = cell_averaging_cfar(power)
        assert res.detection_indices.tolist() == [100]

    def test_guard_cells_protect_spread_targets(self):
        power = np.ones(256)
        power[100] = 80.0
        power[101] = 40.0  # leakage into the neighbour gate
        with_guard = cell_averaging_cfar(power, CfarConfig(guard_cells=2))
        assert 100 in with_guard.detection_indices

    def test_threshold_tracks_local_level(self):
        # A step in the noise floor must not fire detections by itself.
        power = np.concatenate([np.ones(128), 10 * np.ones(128)])
        res = cell_averaging_cfar(power, CfarConfig(threshold_factor=15.0))
        assert res.num_detections == 0

    def test_every_gate_gets_a_decision(self):
        res = cell_averaging_cfar(np.ones(128))
        assert res.detections.shape == (128,)
        assert res.threshold.shape == (128,)

    def test_profile_too_short_rejected(self):
        with pytest.raises(ShapeError):
            cell_averaging_cfar(np.ones(10))

    def test_2d_input_rejected(self):
        with pytest.raises(ShapeError):
            cell_averaging_cfar(np.ones((4, 64)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CfarConfig(train_cells=0)
        with pytest.raises(ValueError):
            CfarConfig(guard_cells=-1)
        with pytest.raises(ValueError):
            CfarConfig(threshold_factor=0)


class TestEndToEndDetection:
    def test_injected_target_detected_exactly(self):
        power = adapted_power()
        res = cell_averaging_cfar(power)
        assert res.detection_indices.tolist() == [128]

    def test_no_target_no_detection(self):
        power = adapted_power(amplitude=0.0)
        res = cell_averaging_cfar(power)
        assert 128 not in res.detection_indices
        assert res.num_detections <= 2  # rare clutter residue allowed

    def test_weak_target_needs_adaptation(self):
        # A weak target (amplitude 8) through the *unadapted* beamformer
        # drowns in clutter+jamming; the adapted weights pull it out --
        # the reason STAP exists.
        sc = RadarScenario(channels=4, pulses=8, ranges=256)
        cube = inject_target(generate_datacube(sc), 0.1, 0.25, 8.0, 128)
        steer = space_time_steering(4, 8, 0.1, 0.25)

        w0 = steer / np.linalg.norm(steer) ** 2
        unadapted = np.abs(cube.snapshots() @ w0.conj()) ** 2
        assert 128 not in cell_averaging_cfar(unadapted).detection_indices

        training = training_matrices(generate_datacube(sc), 1, 96, 32)
        w = qr_adaptive_weights(training, steer).weights[0]
        adapted = np.abs(cube.snapshots() @ w.conj()) ** 2
        assert 128 in cell_averaging_cfar(adapted).detection_indices
