"""Property test: sharding never changes results or merged counters.

For LU and QR batches across worker counts 1/2/4 and uneven chunk
splits, the sharded runtime must produce bitwise-identical outputs and
exactly-equal merged counter registries versus the serial path (the same
chunk plan executed in-process), and bitwise-identical numerics versus
the plain unsharded kernel launch.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels.batched import diagonally_dominant_batch, random_batch
from repro.kernels.device import per_block_lu, per_block_qr
from repro.runtime import BatchRuntime, ProblemBatch, plan_chunks, problem_cost


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    # One warm calibration cache for every example keeps each run cheap.
    return tmp_path_factory.mktemp("runtime-cache")


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    op=st.sampled_from(["lu", "qr"]),
    n=st.integers(min_value=3, max_value=10),
    batch=st.integers(min_value=2, max_value=36),
    chunk_problems=st.integers(min_value=1, max_value=9),
    workers=st.sampled_from([1, 2, 4]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_sharded_equals_serial(cache_dir, op, n, batch, chunk_problems, workers, seed):
    if op == "lu":
        matrices = diagonally_dominant_batch(batch, n, seed=seed)
        direct = per_block_lu(matrices)
    else:
        matrices = random_batch(batch, n, n, seed=seed)
        direct = per_block_qr(matrices)

    problems = ProblemBatch.single(op, matrices)
    # A budget of `chunk_problems` problems per chunk; rarely divides
    # `batch` evenly, so tail chunks exercise uneven splits.
    chunk_cost = problem_cost(op, n, n) * chunk_problems
    plan = plan_chunks(problems, chunk_cost)

    serial = BatchRuntime(
        workers=1, chunk_cost=chunk_cost, cache_directory=cache_dir
    ).run(problems)
    sharded = BatchRuntime(
        workers=workers, chunk_cost=chunk_cost, cache_directory=cache_dir
    ).run(problems)

    assert serial.chunks == sharded.chunks == len(plan)
    if workers > 1 and len(plan) > 1:
        assert sharded.mode == "process"

    # Bitwise-identical numerics: sharded == serial == plain launch.
    assert np.array_equal(sharded.output, serial.output)
    assert np.array_equal(sharded.output, direct.output)
    if direct.extra is not None:
        assert np.array_equal(sharded.extra, direct.extra)

    # Exactly-equal merged counters (totals, event counts, and maxima).
    assert sharded.counters.snapshot() == serial.counters.snapshot()
    assert sharded.counters.stages() == serial.counters.stages()
