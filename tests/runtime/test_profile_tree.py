"""Span trees from real runs: linkage, stability, serial/sharded parity."""

import pytest

from repro.kernels.batched import diagonally_dominant_batch
from repro.model.flops import lu_flops
from repro.observe import tracing
from repro.observe.profile import (
    build_span_trees,
    set_profiling_enabled,
)
from repro.runtime import BatchRuntime, ProblemBatch


def _runtime(tmp_path, **kwargs):
    kwargs.setdefault("cache_directory", tmp_path / "cache")
    kwargs.setdefault("history", False)
    return BatchRuntime(**kwargs)


def _traced_run(tmp_path, workers, matrices, chunk_cost):
    runtime = _runtime(tmp_path, workers=workers, chunk_cost=chunk_cost)
    with tracing() as tracer:
        report = runtime.run(ProblemBatch.single("lu", matrices))
    return report, tracer


def _batch_root(tracer, scope=None):
    roots = build_span_trees(tracer.events, scope=scope)
    batches = [r for r in roots if r.name == "batch"]
    assert len(batches) == 1, f"expected one batch root, got {batches}"
    return batches[0]


class TestTreeLinkage:
    def test_every_chunk_has_exactly_one_parent(self, tmp_path):
        matrices = diagonally_dominant_batch(40, 12, seed=3)
        report, tracer = _traced_run(tmp_path, 3, matrices, lu_flops(12) * 7)
        assert report.mode == "process"
        root = _batch_root(tracer)
        execute = root.find("execute")
        chunk_nodes = [n for n in root.walk() if n.name == "chunk"]
        assert len(chunk_nodes) == report.chunks
        for chunk in chunk_nodes:
            assert chunk.parent_id == execute.span_id
            assert chunk in execute.children
            # Worker-side spans hang off the chunk, nothing else.
            for child in chunk.children:
                assert child.name in ("submit", "deserialize", "attempt")
                assert child.parent_id == chunk.span_id

    def test_no_orphans_within_scope(self, tmp_path):
        matrices = diagonally_dominant_batch(40, 12, seed=3)
        report, tracer = _traced_run(tmp_path, 3, matrices, lu_flops(12) * 7)
        scope = report.profile.scope
        roots = build_span_trees(tracer.events, scope=scope)
        # Every profile span under the scope reached its parent: the
        # scope filter yields exactly the one batch root.
        assert [r.name for r in roots] == ["batch"]

    def test_chunks_stable_in_submission_order(self, tmp_path):
        matrices = diagonally_dominant_batch(48, 12, seed=4)
        report, tracer = _traced_run(tmp_path, 3, matrices, lu_flops(12) * 9)
        execute = _batch_root(tracer).find("execute")
        indices = [c.args["chunk"] for c in execute.children]
        assert indices == sorted(indices)

    def test_every_attempt_carries_its_worker_pid(self, tmp_path):
        matrices = diagonally_dominant_batch(40, 12, seed=5)
        report, tracer = _traced_run(tmp_path, 2, matrices, lu_flops(12) * 7)
        root = _batch_root(tracer)
        attempts = [n for n in root.walk() if n.name == "attempt"]
        assert attempts
        pids = {int(a.args["worker"]) for a in attempts}
        assert all(pid > 0 for pid in pids)
        assert len(pids) >= 2  # the pool really fanned out


class TestSerialShardedParity:
    def test_identical_tree_signature(self, tmp_path):
        # Same chunk plan, different execution: the span trees must be
        # structurally identical (timing and worker pids erased).
        matrices = diagonally_dominant_batch(40, 12, seed=6)
        chunk_cost = lu_flops(12) * 7
        serial_report, serial_tracer = _traced_run(
            tmp_path / "serial", 1, matrices, chunk_cost
        )
        sharded_report, sharded_tracer = _traced_run(
            tmp_path / "sharded", 2, matrices, chunk_cost
        )
        assert serial_report.mode == "serial"
        assert sharded_report.mode == "process"
        serial_root = _batch_root(serial_tracer, scope=serial_report.profile.scope)
        sharded_root = _batch_root(sharded_tracer, scope=sharded_report.profile.scope)
        assert serial_root.signature() == sharded_root.signature()


class TestReportProfile:
    def test_decomposition_sums_to_wall_within_5_percent(self, tmp_path):
        matrices = diagonally_dominant_batch(64, 16, seed=7)
        report, _ = _traced_run(tmp_path, 3, matrices, lu_flops(16) * 11)
        profile = report.profile
        assert profile is not None
        assert sum(profile.phases.values()) == pytest.approx(profile.wall_s, rel=1e-6)
        # The span-tree wall brackets the reported wall: report.wall_s
        # is clocked up to the merge, the batch span also covers it.
        assert report.wall_s <= profile.wall_s <= report.wall_s * 1.5
        assert profile.coverage > 0.5

    def test_critical_path_resolves_to_a_real_chunk(self, tmp_path):
        matrices = diagonally_dominant_batch(40, 12, seed=8)
        report, _ = _traced_run(tmp_path, 2, matrices, lu_flops(12) * 7)
        steps = {s.name for s in report.profile.critical_path}
        assert {"plan", "submit", "attempt", "merge"} <= steps
        attempt = next(s for s in report.profile.critical_path if s.name == "attempt")
        assert "/chunk:" in attempt.span_id

    def test_untraced_run_has_no_profile(self, tmp_path):
        matrices = diagonally_dominant_batch(24, 12, seed=9)
        runtime = _runtime(tmp_path, workers=1, chunk_cost=1e12)
        report = runtime.run(ProblemBatch.single("lu", matrices))
        assert report.profile is None

    def test_profiling_disabled_emits_no_spans(self, tmp_path):
        matrices = diagonally_dominant_batch(24, 12, seed=9)
        previous = set_profiling_enabled(False)
        try:
            report, tracer = _traced_run(tmp_path, 1, matrices, 1e12)
        finally:
            set_profiling_enabled(previous)
        assert report.profile is None
        assert not [e for e in tracer.events if e.category == "profile"]
