"""Persistent calibration/dispatch caches: round trips and invalidation."""

import dataclasses
import json

import pytest

import repro.runtime.cache as cache_mod
from repro.approaches import Workload, best_approach, rank_approaches
from repro.gpu.device import G80, QUADRO_6000
from repro.microbench import calibrate
from repro.observe import tracing
from repro.observe.metrics import (
    MetricsRegistry,
    set_default_registry,
    set_metrics_enabled,
)
from repro.runtime import CalibrationCache, DispatchCache, device_fingerprint
from repro.runtime.cache import params_fingerprint


def _calibrate_spans(tracer):
    return [e for e in tracer.events if e.name == "calibrate" and e.ph == "X"]


@pytest.fixture
def metrics_registry():
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    previous_flag = set_metrics_enabled(True)
    yield registry
    set_default_registry(previous)
    set_metrics_enabled(previous_flag)


class TestCalibrationCache:
    def test_cold_load_is_none(self, tmp_path):
        assert CalibrationCache(tmp_path).load(QUADRO_6000) is None

    def test_round_trip(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        params = calibrate(QUADRO_6000)
        path = cache.store(QUADRO_6000, params)
        assert path.exists()
        loaded = cache.load(QUADRO_6000)
        assert loaded == params

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_keyed_by_device(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        assert cache.load(G80) is None
        assert cache.path_for(G80) != cache.path_for(QUADRO_6000)

    def test_invalidated_on_version_change(self, tmp_path, monkeypatch):
        cache = CalibrationCache(tmp_path)
        cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA", cache_mod.CACHE_SCHEMA + 1)
        assert cache.load(QUADRO_6000) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        path = cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        path.write_text("{ truncated")
        assert cache.load(QUADRO_6000) is None

    def test_tampered_parameters_are_a_miss(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        path = cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        doc = json.loads(path.read_text())
        del doc["parameters"]["gamma"]
        path.write_text(json.dumps(doc))
        assert cache.load(QUADRO_6000) is None

    def test_fingerprint_tracks_spec_fields(self):
        tweaked = dataclasses.replace(QUADRO_6000, l2_bytes=1024)
        assert device_fingerprint(tweaked) != device_fingerprint(QUADRO_6000)


class TestJsonStoreStatus:
    def test_miss_then_hit_then_stale(self, tmp_path):
        store = cache_mod._JsonStore(tmp_path / "doc.json")
        assert store.load_status() == (None, "miss")

        store.store({"x": 1})
        doc, outcome = store.load_status()
        assert outcome == "hit" and doc["x"] == 1

        store.path.write_text("{ truncated")
        assert store.load_status() == (None, "miss")

    def test_binary_garbage_is_a_miss_not_an_exception(self, tmp_path):
        store = cache_mod._JsonStore(tmp_path / "doc.json")
        store.path.write_bytes(b"\x80\x81\xfe\xff not json at all")
        assert store.load_status() == (None, "miss")

    def test_foreign_version_is_stale_not_miss(self, tmp_path):
        store = cache_mod._JsonStore(tmp_path / "doc.json")
        store.store({"x": 1})
        doc = json.loads(store.path.read_text())
        doc["version"] = "0.0.0/schema0"
        store.path.write_text(json.dumps(doc))
        assert store.load_status() == (None, "stale")


class TestParamsFingerprint:
    def test_stable_across_recalibration(self):
        assert params_fingerprint(calibrate(QUADRO_6000)) == params_fingerprint(
            calibrate(QUADRO_6000)
        )

    def test_tracks_measured_values(self):
        params = calibrate(QUADRO_6000)
        tweaked = dataclasses.replace(params, gamma=params.gamma * 2)
        assert params_fingerprint(tweaked) != params_fingerprint(params)

    def test_tracks_device(self):
        assert params_fingerprint(calibrate(G80)) != params_fingerprint(
            calibrate(QUADRO_6000)
        )


class TestCalibrateWithCache:
    def test_cold_measures_then_warm_skips(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        with tracing() as cold:
            measured = calibrate(QUADRO_6000, cache=cache)
        assert len(_calibrate_spans(cold)) == 1

        with tracing() as warm:
            loaded = calibrate(QUADRO_6000, cache=cache)
        assert len(_calibrate_spans(warm)) == 0
        assert any(e.name == "calibrate.cache_hit" for e in warm.events)
        assert loaded == measured

    def test_cache_false_always_measures(self, tmp_path):
        with tracing() as tracer:
            calibrate(QUADRO_6000, cache=False)
            calibrate(QUADRO_6000, cache=False)
        assert len(_calibrate_spans(tracer)) == 2


class TestDispatchCache:
    def work(self):
        return Workload.square("qr", 56, 5000)

    def test_round_trip_matches_uncached(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        uncached = rank_approaches(self.work())
        first = rank_approaches(self.work(), cache=cache)
        second = rank_approaches(self.work(), cache=cache)
        names = [r.name for r in uncached]
        assert [r.name for r in first] == names
        assert [r.name for r in second] == names
        assert [r.gflops for r in second] == [r.gflops for r in uncached]
        assert cache.hits == 1 and cache.misses == 1

    def test_persists_across_instances(self, tmp_path):
        rank_approaches(self.work(), cache=DispatchCache(directory=tmp_path))
        fresh = DispatchCache(directory=tmp_path)
        assert fresh.lookup(self.work()) is not None

    def test_unknown_candidate_names_force_recompute(self, tmp_path):
        from repro.approaches import PerBlockApproach, PerThreadApproach

        cache = DispatchCache(directory=tmp_path)
        rank_approaches(self.work(), cache=cache)
        # A restricted roster no longer contains every cached name: the
        # entry must not leak approaches the caller did not supply.
        limited = rank_approaches(
            self.work(), [PerThreadApproach(), PerBlockApproach()], cache=cache
        )
        assert {r.name for r in limited} <= {"per-thread", "per-block"}

    def test_keys_include_batch_and_size(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        small = Workload.square("qr", 8, 100)
        big = Workload.square("qr", 56, 100000)
        assert cache.key(small) != cache.key(big)

    def test_best_approach_accepts_cache(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        winner = best_approach(self.work(), cache=cache)
        assert winner.name == best_approach(self.work(), cache=cache).name
        assert cache.hits == 1

    def test_version_change_invalidates_disk(self, tmp_path, monkeypatch):
        rank_approaches(self.work(), cache=DispatchCache(directory=tmp_path))
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA", cache_mod.CACHE_SCHEMA + 1)
        fresh = DispatchCache(directory=tmp_path)
        assert len(fresh) == 0

    def test_cache_hit_traced(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        rank_approaches(self.work(), cache=cache)
        with tracing() as tracer:
            rank_approaches(self.work(), cache=cache)
        assert any(e.name == "dispatch.cache_hit" for e in tracer.events)
        assert tracer.counters.value("dispatch.cache_hits") == 1

    def test_bind_params_scopes_keys(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        unbound_key = cache.key(self.work())
        assert unbound_key.endswith(":punbound")

        params = calibrate(QUADRO_6000)
        cache.bind_params(params)
        bound_key = cache.key(self.work())
        assert bound_key != unbound_key
        assert bound_key.endswith(":p" + params_fingerprint(params)[:12])

        cache.bind_params(None)
        assert cache.key(self.work()) == unbound_key

    def test_recalibration_invalidates_memos(self, tmp_path):
        # A ranking memoized under one set of Table-IV latencies must not
        # be served under another; rebinding the original restores it.
        cache = DispatchCache(directory=tmp_path)
        params = calibrate(QUADRO_6000)
        cache.bind_params(params)
        rank_approaches(self.work(), cache=cache)
        assert cache.lookup(self.work()) is not None

        cache.bind_params(dataclasses.replace(params, gamma=params.gamma * 2))
        assert cache.lookup(self.work()) is None

        cache.bind_params(params)
        assert cache.lookup(self.work()) is not None

    def test_undecodable_entry_counts_as_stale(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        rank_approaches(self.work(), cache=cache)
        doc = json.loads(cache.path.read_text())
        doc["entries"][cache.key(self.work())] = 123  # not a ranking list
        cache.path.write_text(json.dumps(doc))

        fresh = DispatchCache(directory=tmp_path)
        assert fresh.lookup(self.work()) is None
        assert fresh.stale == 1
        assert fresh.misses == 1
        assert fresh.hits == 0


class TestCacheMetrics:
    def test_calibration_outcomes_counted(self, tmp_path, metrics_registry):
        cache = CalibrationCache(tmp_path)
        cache.load(QUADRO_6000)  # cold: miss
        cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        cache.load(QUADRO_6000)  # warm: hit
        cache.path_for(QUADRO_6000).write_text("{ truncated")
        cache.load(QUADRO_6000)  # corrupt: cold miss + corrupt counter

        def requests(outcome):
            return metrics_registry.value(
                "repro_cache_requests_total", cache="calibration", outcome=outcome
            )

        assert requests("miss") == 2
        assert requests("hit") == 1
        assert metrics_registry.value(
            "repro_cache_corrupt_total", cache="calibration"
        ) == 1
        assert metrics_registry.value(
            "repro_cache_writes_total", cache="calibration"
        ) == 1

    def test_dispatch_outcomes_counted(self, tmp_path, metrics_registry):
        cache = DispatchCache(directory=tmp_path)
        work = Workload.square("qr", 56, 5000)
        rank_approaches(work, cache=cache)  # miss, then store
        rank_approaches(work, cache=cache)  # hit

        def requests(outcome):
            return metrics_registry.value(
                "repro_cache_requests_total", cache="dispatch", outcome=outcome
            )

        assert requests("miss") == 1
        assert requests("hit") == 1
        assert metrics_registry.value(
            "repro_cache_writes_total", cache="dispatch"
        ) == 1
        assert metrics_registry.value(
            "repro_dispatch_rankings_total", op="qr", outcome="computed"
        ) == 1
        assert metrics_registry.value(
            "repro_dispatch_rankings_total", op="qr", outcome="cache-hit"
        ) == 1
