"""Persistent calibration/dispatch caches: round trips and invalidation."""

import json


import repro.runtime.cache as cache_mod
from repro.approaches import Workload, best_approach, rank_approaches
from repro.gpu.device import G80, QUADRO_6000
from repro.microbench import calibrate
from repro.observe import tracing
from repro.runtime import CalibrationCache, DispatchCache, device_fingerprint


def _calibrate_spans(tracer):
    return [e for e in tracer.events if e.name == "calibrate" and e.ph == "X"]


class TestCalibrationCache:
    def test_cold_load_is_none(self, tmp_path):
        assert CalibrationCache(tmp_path).load(QUADRO_6000) is None

    def test_round_trip(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        params = calibrate(QUADRO_6000)
        path = cache.store(QUADRO_6000, params)
        assert path.exists()
        loaded = cache.load(QUADRO_6000)
        assert loaded == params

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_keyed_by_device(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        assert cache.load(G80) is None
        assert cache.path_for(G80) != cache.path_for(QUADRO_6000)

    def test_invalidated_on_version_change(self, tmp_path, monkeypatch):
        cache = CalibrationCache(tmp_path)
        cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA", cache_mod.CACHE_SCHEMA + 1)
        assert cache.load(QUADRO_6000) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        path = cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        path.write_text("{ truncated")
        assert cache.load(QUADRO_6000) is None

    def test_tampered_parameters_are_a_miss(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        path = cache.store(QUADRO_6000, calibrate(QUADRO_6000))
        doc = json.loads(path.read_text())
        del doc["parameters"]["gamma"]
        path.write_text(json.dumps(doc))
        assert cache.load(QUADRO_6000) is None

    def test_fingerprint_tracks_spec_fields(self):
        import dataclasses

        tweaked = dataclasses.replace(QUADRO_6000, l2_bytes=1024)
        assert device_fingerprint(tweaked) != device_fingerprint(QUADRO_6000)


class TestCalibrateWithCache:
    def test_cold_measures_then_warm_skips(self, tmp_path):
        cache = CalibrationCache(tmp_path)
        with tracing() as cold:
            measured = calibrate(QUADRO_6000, cache=cache)
        assert len(_calibrate_spans(cold)) == 1

        with tracing() as warm:
            loaded = calibrate(QUADRO_6000, cache=cache)
        assert len(_calibrate_spans(warm)) == 0
        assert any(e.name == "calibrate.cache_hit" for e in warm.events)
        assert loaded == measured

    def test_cache_false_always_measures(self, tmp_path):
        with tracing() as tracer:
            calibrate(QUADRO_6000, cache=False)
            calibrate(QUADRO_6000, cache=False)
        assert len(_calibrate_spans(tracer)) == 2


class TestDispatchCache:
    def work(self):
        return Workload.square("qr", 56, 5000)

    def test_round_trip_matches_uncached(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        uncached = rank_approaches(self.work())
        first = rank_approaches(self.work(), cache=cache)
        second = rank_approaches(self.work(), cache=cache)
        names = [r.name for r in uncached]
        assert [r.name for r in first] == names
        assert [r.name for r in second] == names
        assert [r.gflops for r in second] == [r.gflops for r in uncached]
        assert cache.hits == 1 and cache.misses == 1

    def test_persists_across_instances(self, tmp_path):
        rank_approaches(self.work(), cache=DispatchCache(directory=tmp_path))
        fresh = DispatchCache(directory=tmp_path)
        assert fresh.lookup(self.work()) is not None

    def test_unknown_candidate_names_force_recompute(self, tmp_path):
        from repro.approaches import PerBlockApproach, PerThreadApproach

        cache = DispatchCache(directory=tmp_path)
        rank_approaches(self.work(), cache=cache)
        # A restricted roster no longer contains every cached name: the
        # entry must not leak approaches the caller did not supply.
        limited = rank_approaches(
            self.work(), [PerThreadApproach(), PerBlockApproach()], cache=cache
        )
        assert {r.name for r in limited} <= {"per-thread", "per-block"}

    def test_keys_include_batch_and_size(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        small = Workload.square("qr", 8, 100)
        big = Workload.square("qr", 56, 100000)
        assert cache.key(small) != cache.key(big)

    def test_best_approach_accepts_cache(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        winner = best_approach(self.work(), cache=cache)
        assert winner.name == best_approach(self.work(), cache=cache).name
        assert cache.hits == 1

    def test_version_change_invalidates_disk(self, tmp_path, monkeypatch):
        rank_approaches(self.work(), cache=DispatchCache(directory=tmp_path))
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA", cache_mod.CACHE_SCHEMA + 1)
        fresh = DispatchCache(directory=tmp_path)
        assert len(fresh) == 0

    def test_cache_hit_traced(self, tmp_path):
        cache = DispatchCache(directory=tmp_path)
        rank_approaches(self.work(), cache=cache)
        with tracing() as tracer:
            rank_approaches(self.work(), cache=cache)
        assert any(e.name == "dispatch.cache_hit" for e in tracer.events)
        assert tracer.counters.value("dispatch.cache_hits") == 1
