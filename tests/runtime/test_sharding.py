"""Shard planning: deterministic, covering, size-aware."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.model.flops import lu_flops, qr_flops
from repro.runtime import (
    Chunk,
    ProblemBatch,
    ProblemGroup,
    plan_chunks,
    problem_cost,
)


def _batch(op="lu", batch=32, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return ProblemBatch.single(op, rng.standard_normal((batch, n, n)))


class TestProblemBatch:
    def test_single_group_shape(self):
        pb = _batch(batch=12, n=6)
        assert pb.total_problems == 12
        assert pb.groups[0].m == pb.groups[0].n == 6

    def test_two_dim_input_promoted(self):
        group = ProblemGroup("lu", np.eye(4))
        assert group.data.shape == (1, 4, 4)

    def test_bad_rank_rejected(self):
        with pytest.raises(ShapeError):
            ProblemGroup("lu", np.zeros(5))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            ProblemBatch([])

    def test_mixed_builds_one_group_per_array(self):
        arrays = [np.zeros((4, 6, 6)), np.zeros((9, 10, 10))]
        pb = ProblemBatch.mixed("qr", arrays)
        assert [g.batch for g in pb.groups] == [4, 9]
        assert pb.total_problems == 13

    def test_cost_uses_op_flops(self):
        assert problem_cost("lu", 8, 8) == lu_flops(8)
        assert problem_cost("qr", 16, 8) == qr_flops(16, 8)
        assert problem_cost("mystery", 4, 8) == 4 * 64


class TestPlanChunks:
    def test_covers_batch_contiguously(self):
        pb = _batch(batch=100, n=8)
        chunks = plan_chunks(pb, chunk_cost=lu_flops(8) * 7)
        assert chunks[0].start == 0
        assert chunks[-1].stop == 100
        for before, after in zip(chunks, chunks[1:]):
            assert after.start == before.stop
        assert sum(c.problems for c in chunks) == 100

    def test_deterministic(self):
        pb = _batch(batch=64, n=8)
        assert plan_chunks(pb, 1e5) == plan_chunks(pb, 1e5)

    def test_independent_of_worker_count(self):
        # Chunk boundaries are a function of the batch and budget only;
        # nothing about the plan can change when the pool size does.
        pb = _batch(batch=50, n=8)
        plan = plan_chunks(pb, 1e4)
        assert all(isinstance(c, Chunk) for c in plan)
        assert plan == plan_chunks(pb, 1e4)

    def test_size_aware_mixed_n(self):
        # Same problem count per group, wildly different cost: the
        # expensive group must shard finer than the cheap one.
        big = ProblemGroup("lu", np.zeros((64, 48, 48), dtype=np.float32))
        small = ProblemGroup("lu", np.zeros((64, 4, 4), dtype=np.float32))
        chunks = plan_chunks(ProblemBatch([big, small]), chunk_cost=lu_flops(48) * 8)
        big_chunks = [c for c in chunks if c.group == 0]
        small_chunks = [c for c in chunks if c.group == 1]
        assert len(big_chunks) == 8
        assert len(small_chunks) == 1

    def test_at_least_one_problem_per_chunk(self):
        pb = _batch(batch=5, n=32)
        chunks = plan_chunks(pb, chunk_cost=1.0)
        assert len(chunks) == 5
        assert all(c.problems == 1 for c in chunks)

    def test_uneven_tail_chunk(self):
        pb = _batch(batch=10, n=8)
        chunks = plan_chunks(pb, chunk_cost=lu_flops(8) * 4)
        assert [c.problems for c in chunks] == [4, 4, 2]

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            plan_chunks(_batch(), chunk_cost=0)
