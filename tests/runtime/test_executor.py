"""Sharded execution: parity with serial, merged observability, fallback."""

import numpy as np
import pytest

from repro.kernels.batched import diagonally_dominant_batch, random_batch, run_batched
from repro.kernels.device import per_block_lu, per_block_qr
from repro.model.flops import lu_flops
from repro.observe import metrics as metrics_mod
from repro.observe import tracing
from repro.observe.history import RunHistory
from repro.observe.regime import REGIMES
from repro.runtime import BatchRuntime, ProblemBatch, supported_ops


def _runtime(tmp_path, **kwargs):
    kwargs.setdefault("cache_directory", tmp_path / "cache")
    return BatchRuntime(**kwargs)


@pytest.fixture
def metrics_registry():
    registry = metrics_mod.MetricsRegistry()
    previous = metrics_mod.set_default_registry(registry)
    previous_flag = metrics_mod.set_metrics_enabled(True)
    yield registry
    metrics_mod.set_default_registry(previous)
    metrics_mod.set_metrics_enabled(previous_flag)


class TestParity:
    def test_single_chunk_counters_match_unsharded_launch(self, tmp_path):
        # One chunk == one launch: the merged registry must equal the
        # plain kernel's launch counters exactly, not approximately.
        matrices = diagonally_dominant_batch(24, 12, seed=0)
        direct = per_block_lu(matrices)
        runtime = _runtime(tmp_path, workers=1, chunk_cost=1e12)
        report = runtime.run(ProblemBatch.single("lu", matrices))
        assert report.chunks == 1
        assert report.counters.snapshot() == direct.launch.counters.snapshot()
        assert np.array_equal(report.output, direct.output)

    def test_sharded_output_bitwise_equals_serial(self, tmp_path):
        matrices = diagonally_dominant_batch(40, 12, seed=1)
        chunk_cost = lu_flops(12) * 7  # uneven: 7+7+...+5
        direct = per_block_lu(matrices)
        serial = _runtime(tmp_path, workers=1, chunk_cost=chunk_cost).run(
            ProblemBatch.single("lu", matrices)
        )
        sharded = _runtime(tmp_path, workers=2, chunk_cost=chunk_cost).run(
            ProblemBatch.single("lu", matrices)
        )
        assert sharded.mode == "process"
        assert serial.mode == "serial"
        assert np.array_equal(sharded.output, serial.output)
        assert np.array_equal(sharded.output, direct.output)
        assert np.array_equal(sharded.extra, serial.extra)
        assert sharded.counters.snapshot() == serial.counters.snapshot()

    def test_mixed_size_groups(self, tmp_path):
        small = diagonally_dominant_batch(12, 6, seed=2)
        large = diagonally_dominant_batch(9, 20, seed=3)
        runtime = _runtime(tmp_path, workers=2, chunk_cost=lu_flops(20) * 3)
        report = runtime.run(ProblemBatch.mixed("lu", [small, large]))
        assert len(report.results) == 2
        assert np.array_equal(report.results[0].output, per_block_lu(small).output)
        assert np.array_equal(report.results[1].output, per_block_lu(large).output)
        assert report.problems == 21

    def test_qr_parity(self, tmp_path):
        matrices = random_batch(18, 10, 10, seed=4)
        direct = per_block_qr(matrices)
        report = run_batched(
            "qr",
            matrices,
            runtime=_runtime(tmp_path, workers=2, chunk_cost=1e4),
        )
        assert np.array_equal(report.output, direct.output)
        assert np.array_equal(report.extra, direct.extra)

    def test_kernel_kwargs_pass_through(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=5)
        direct = per_block_lu(matrices, fast_math=False)
        report = _runtime(tmp_path, workers=1).run(
            ProblemBatch.single("lu", matrices), fast_math=False
        )
        assert np.array_equal(report.output, direct.output)


class TestObservability:
    def test_traced_launch_merges_events_and_counters(self, tmp_path):
        matrices = diagonally_dominant_batch(30, 10, seed=6)
        chunk_cost = lu_flops(10) * 10
        serial_rt = _runtime(tmp_path, workers=1, chunk_cost=chunk_cost)
        sharded_rt = _runtime(tmp_path, workers=2, chunk_cost=chunk_cost)
        # Calibrate outside the traced regions so both tracers see the
        # kernel launches only, not one cold + one warm calibration.
        serial_rt.parameters()
        sharded_rt.parameters()
        with tracing() as serial_tracer:
            serial_rt.run(ProblemBatch.single("lu", matrices))
        with tracing() as sharded_tracer:
            report = sharded_rt.run(ProblemBatch.single("lu", matrices))
        assert report.mode == "process"
        shard_tags = {
            e.args["shard"]
            for e in sharded_tracer.events
            if e.args and "shard" in e.args
        }
        assert shard_tags == set(range(report.chunks))
        assert report.chunks > 1
        assert any(e.name == "runtime.launch" for e in sharded_tracer.events)
        # Worker registries fold into the launch tracer exactly as the
        # serial path's do (calibration counters ride along identically).
        assert sharded_tracer.counters.snapshot() == serial_tracer.counters.snapshot()

    def test_worker_events_keep_tags_and_per_shard_order(self, tmp_path):
        # Satellite of the ingest re-stamping fix: every folded event must
        # carry shard+worker tags, and the per-shard event-name sequence
        # (span nesting included) must survive the trip through the pool.
        matrices = diagonally_dominant_batch(30, 10, seed=12)
        chunk_cost = lu_flops(10) * 10
        serial_rt = _runtime(tmp_path, workers=1, chunk_cost=chunk_cost)
        sharded_rt = _runtime(tmp_path, workers=2, chunk_cost=chunk_cost)
        serial_rt.parameters()
        sharded_rt.parameters()

        def shard_sequences(runtime):
            with tracing() as tracer:
                report = runtime.run(ProblemBatch.single("lu", matrices))
            sequences = {}
            for event in tracer.events:
                if event.args and "shard" in event.args:
                    assert "worker" in event.args
                    sequences.setdefault(event.args["shard"], []).append(
                        event.name
                    )
            return report, sequences

        serial_report, serial_seq = shard_sequences(serial_rt)
        sharded_report, sharded_seq = shard_sequences(sharded_rt)
        assert sharded_report.mode == "process"
        assert serial_report.mode == "serial"
        assert set(sharded_seq) == set(range(sharded_report.chunks))
        assert sharded_seq == serial_seq

    def test_untraced_launch_emits_nothing(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=7)
        report = _runtime(tmp_path, workers=1).run(ProblemBatch.single("lu", matrices))
        assert report.counters.value("flops.groups") > 0

    def test_report_summary_is_flat(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=8)
        report = _runtime(tmp_path, workers=1).run(ProblemBatch.single("lu", matrices))
        summary = report.summary()
        assert summary["problems"] == 8
        assert summary["groups"][0]["op"] == "lu"
        assert summary["groups"][0]["gflops"] > 0


class TestDegradation:
    def test_worker_failure_degrades_to_serial_with_warning(
        self, tmp_path, monkeypatch
    ):
        def broken_pool(self, entries, record=None, nchunks=None):
            raise OSError("simulated pool failure")

        monkeypatch.setattr(BatchRuntime, "_run_pool", broken_pool)
        matrices = diagonally_dominant_batch(20, 10, seed=9)
        runtime = _runtime(tmp_path, workers=4, chunk_cost=lu_flops(10) * 5)
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            report = runtime.run(ProblemBatch.single("lu", matrices))
        assert report.mode == "serial-fallback"
        assert np.array_equal(report.output, per_block_lu(matrices).output)

    def test_unknown_op_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown batched op"):
            _runtime(tmp_path, workers=1).run(
                ProblemBatch.single("svd", np.eye(4, dtype=np.float32))
            )

    def test_runtime_and_workers_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="either runtime or workers"):
            run_batched(
                "lu",
                np.eye(4, dtype=np.float32),
                runtime=_runtime(tmp_path),
                workers=2,
            )

    def test_supported_ops_listed(self):
        assert {"lu", "qr", "cholesky", "lu_pivot"} <= set(supported_ops())


class TestRuntimeCaches:
    def test_run_calibrates_once_per_device(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=10)
        batch = ProblemBatch.single("lu", matrices)
        with tracing() as cold:
            _runtime(tmp_path, workers=1).run(batch)
        with tracing() as warm:
            report = _runtime(tmp_path, workers=1).run(batch)
        cold_spans = [e for e in cold.events if e.name == "calibrate" and e.ph == "X"]
        warm_spans = [e for e in warm.events if e.name == "calibrate" and e.ph == "X"]
        assert len(cold_spans) == 1
        assert len(warm_spans) == 0
        assert report.params is not None

    def test_caches_disabled(self, tmp_path):
        runtime = BatchRuntime(workers=1, use_caches=False)
        assert runtime.calibration_cache is None
        assert runtime.dispatch_cache is None
        assert runtime.parameters() is runtime.parameters()


class TestFleetTelemetry:
    def _run_with_registry(self, tmp_path, workers, chunk_cost, matrices):
        registry = metrics_mod.MetricsRegistry()
        previous = metrics_mod.set_default_registry(registry)
        previous_flag = metrics_mod.set_metrics_enabled(True)
        try:
            report = _runtime(tmp_path, workers=workers, chunk_cost=chunk_cost).run(
                ProblemBatch.single("lu", matrices)
            )
        finally:
            metrics_mod.set_default_registry(previous)
            metrics_mod.set_metrics_enabled(previous_flag)
        return report, registry

    def test_run_emits_fleet_metrics(self, tmp_path, metrics_registry):
        matrices = diagonally_dominant_batch(40, 12, seed=13)
        runtime = _runtime(tmp_path, workers=2, chunk_cost=lu_flops(12) * 10)
        report = runtime.run(ProblemBatch.single("lu", matrices))
        assert report.mode == "process"
        reg = metrics_registry
        assert reg.value("repro_runtime_launches_total", mode="process") == 1
        assert reg.value("repro_runtime_problems_total", op="lu") == 40
        assert reg.sum_series("repro_chunk_problems_total", op="lu") == 40
        assert reg.sum_series("repro_runtime_chunks_total") == report.chunks
        wall = reg.histogram_value("repro_chunk_wall_seconds", op="lu")
        wait = reg.histogram_value("repro_chunk_queue_wait_seconds", op="lu")
        assert wall.count == report.chunks and wall.total > 0
        assert wait.count == report.chunks and wait.total >= 0
        assert reg.value("repro_runtime_workers") == report.workers
        assert reg.value("repro_runtime_gflops", op="lu") > 0
        # Kernel-level counters recorded inside worker processes folded
        # back into the launch registry.
        assert reg.sum_series("repro_kernel_launches_total") == report.chunks
        assert reg.sum_series("repro_kernel_problems_total") == 40
        # One launch classified into exactly one regime.
        assert reg.sum_series("repro_launch_regime_total") == 1

    def test_serial_and_sharded_deterministic_totals_match(self, tmp_path):
        matrices = diagonally_dominant_batch(40, 12, seed=14)
        chunk_cost = lu_flops(12) * 7
        # Warm the calibration cache so both measured runs see identical
        # cache traffic, not one cold sweep and one hit.
        self._run_with_registry(tmp_path, 1, chunk_cost, matrices)

        serial_report, serial_reg = self._run_with_registry(
            tmp_path, 1, chunk_cost, matrices
        )
        sharded_report, sharded_reg = self._run_with_registry(
            tmp_path, 2, chunk_cost, matrices
        )
        assert serial_report.mode == "serial"
        assert sharded_report.mode == "process"
        deterministic = [
            "repro_kernel_launches_total",
            "repro_kernel_problems_total",
            "repro_kernel_flops_total",
            "repro_runtime_problems_total",
            "repro_runtime_flops_total",
            "repro_runtime_bytes_total",
            "repro_chunk_problems_total",
            "repro_cache_requests_total",
            "repro_launch_regime_total",
        ]
        for name in deterministic:
            assert sharded_reg.sum_series(name) == serial_reg.sum_series(name), name
        # Not just the totals: the per-shard series line up one to one.
        for shard in range(sharded_report.chunks):
            assert sharded_reg.value(
                "repro_chunk_problems_total", op="lu", shard=shard
            ) == serial_reg.value(
                "repro_chunk_problems_total", op="lu", shard=shard
            )

    def test_regimes_classified_on_report(self, tmp_path):
        matrices = diagonally_dominant_batch(12, 8, seed=15)
        report = _runtime(tmp_path, workers=1).run(
            ProblemBatch.single("lu", matrices)
        )
        (classification,) = report.regimes
        assert classification.label == "lu"
        assert classification.regime in REGIMES
        assert sum(classification.shares.values()) == pytest.approx(1.0)

    def test_metrics_disabled_emits_nothing(self, tmp_path, metrics_registry):
        metrics_mod.set_metrics_enabled(False)
        matrices = diagonally_dominant_batch(12, 8, seed=16)
        report = _runtime(tmp_path, workers=1).run(
            ProblemBatch.single("lu", matrices)
        )
        assert len(metrics_registry) == 0
        # Regime classification is part of the result, not telemetry.
        assert report.regimes


class TestRunHistoryIntegration:
    def test_run_appends_history_record(self, tmp_path):
        runtime = _runtime(tmp_path, workers=1)
        assert runtime.history is not None
        assert runtime.history.path == tmp_path / "cache" / "history.jsonl"
        matrices = diagonally_dominant_batch(12, 8, seed=17)
        runtime.run(ProblemBatch.single("lu", matrices))
        (record,) = runtime.history.load()
        assert record["summary"]["problems"] == 12
        assert record["device"] == runtime.device.name
        assert record["regimes"][0]["regime"] in REGIMES
        assert record["attribution"][0]["label"] == "lu"
        assert "residual_total" in record["attribution"][0]

    def test_history_rides_with_use_caches(self, tmp_path):
        assert BatchRuntime(workers=1, use_caches=False).history is None
        assert _runtime(tmp_path, history=False).history is None

    def test_history_accepts_path_and_instance(self, tmp_path):
        path = tmp_path / "elsewhere.jsonl"
        runtime = _runtime(tmp_path, workers=1, history=path)
        runtime.run(
            ProblemBatch.single(
                "lu", diagonally_dominant_batch(8, 8, seed=18)
            )
        )
        assert len(RunHistory(path)) == 1

        ready = RunHistory(tmp_path / "ready.jsonl")
        assert _runtime(tmp_path, history=ready).history is ready


class TestObservableDegradation:
    def test_unknown_op_rejected_before_submission(self, tmp_path, recwarn):
        # Validation happens in the caller, so a bad op never reaches the
        # pool -- no spurious serial-fallback warning rides along.
        runtime = _runtime(tmp_path, workers=4)
        with pytest.raises(ValueError, match="unknown batched op"):
            runtime.run(
                ProblemBatch.mixed("svd", [np.eye(4, dtype=np.float32)] * 8)
            )
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]

    def test_attribution_failure_is_counted_not_silent(
        self, tmp_path, metrics_registry, monkeypatch
    ):
        from repro.observe import attribution as attribution_mod

        def broken_attribution(*args, **kwargs):
            raise ValueError("simulated attribution breakage")

        monkeypatch.setattr(attribution_mod, "attribute_launch", broken_attribution)
        matrices = diagonally_dominant_batch(12, 8, seed=21)
        report = _runtime(tmp_path, workers=1).run(
            ProblemBatch.single("lu", matrices)
        )
        # The launch still succeeds (attribution is decoration)...
        assert np.array_equal(report.output, per_block_lu(matrices).output)
        assert report.regimes == []
        # ...but the loss is visible in the fleet registry.
        assert (
            metrics_registry.value(
                "repro_attribution_errors_total", error="ValueError"
            )
            == 1
        )
