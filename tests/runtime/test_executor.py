"""Sharded execution: parity with serial, merged observability, fallback."""

import numpy as np
import pytest

from repro.kernels.batched import diagonally_dominant_batch, random_batch, run_batched
from repro.kernels.device import per_block_lu, per_block_qr
from repro.model.flops import lu_flops
from repro.observe import tracing
from repro.runtime import BatchRuntime, ProblemBatch, supported_ops


def _runtime(tmp_path, **kwargs):
    kwargs.setdefault("cache_directory", tmp_path / "cache")
    return BatchRuntime(**kwargs)


class TestParity:
    def test_single_chunk_counters_match_unsharded_launch(self, tmp_path):
        # One chunk == one launch: the merged registry must equal the
        # plain kernel's launch counters exactly, not approximately.
        matrices = diagonally_dominant_batch(24, 12, seed=0)
        direct = per_block_lu(matrices)
        runtime = _runtime(tmp_path, workers=1, chunk_cost=1e12)
        report = runtime.run(ProblemBatch.single("lu", matrices))
        assert report.chunks == 1
        assert report.counters.snapshot() == direct.launch.counters.snapshot()
        assert np.array_equal(report.output, direct.output)

    def test_sharded_output_bitwise_equals_serial(self, tmp_path):
        matrices = diagonally_dominant_batch(40, 12, seed=1)
        chunk_cost = lu_flops(12) * 7  # uneven: 7+7+...+5
        direct = per_block_lu(matrices)
        serial = _runtime(tmp_path, workers=1, chunk_cost=chunk_cost).run(
            ProblemBatch.single("lu", matrices)
        )
        sharded = _runtime(tmp_path, workers=2, chunk_cost=chunk_cost).run(
            ProblemBatch.single("lu", matrices)
        )
        assert sharded.mode == "process"
        assert serial.mode == "serial"
        assert np.array_equal(sharded.output, serial.output)
        assert np.array_equal(sharded.output, direct.output)
        assert np.array_equal(sharded.extra, serial.extra)
        assert sharded.counters.snapshot() == serial.counters.snapshot()

    def test_mixed_size_groups(self, tmp_path):
        small = diagonally_dominant_batch(12, 6, seed=2)
        large = diagonally_dominant_batch(9, 20, seed=3)
        runtime = _runtime(tmp_path, workers=2, chunk_cost=lu_flops(20) * 3)
        report = runtime.run(ProblemBatch.mixed("lu", [small, large]))
        assert len(report.results) == 2
        assert np.array_equal(report.results[0].output, per_block_lu(small).output)
        assert np.array_equal(report.results[1].output, per_block_lu(large).output)
        assert report.problems == 21

    def test_qr_parity(self, tmp_path):
        matrices = random_batch(18, 10, 10, seed=4)
        direct = per_block_qr(matrices)
        report = run_batched(
            "qr",
            matrices,
            runtime=_runtime(tmp_path, workers=2, chunk_cost=1e4),
        )
        assert np.array_equal(report.output, direct.output)
        assert np.array_equal(report.extra, direct.extra)

    def test_kernel_kwargs_pass_through(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=5)
        direct = per_block_lu(matrices, fast_math=False)
        report = _runtime(tmp_path, workers=1).run(
            ProblemBatch.single("lu", matrices), fast_math=False
        )
        assert np.array_equal(report.output, direct.output)


class TestObservability:
    def test_traced_launch_merges_events_and_counters(self, tmp_path):
        matrices = diagonally_dominant_batch(30, 10, seed=6)
        chunk_cost = lu_flops(10) * 10
        serial_rt = _runtime(tmp_path, workers=1, chunk_cost=chunk_cost)
        sharded_rt = _runtime(tmp_path, workers=2, chunk_cost=chunk_cost)
        # Calibrate outside the traced regions so both tracers see the
        # kernel launches only, not one cold + one warm calibration.
        serial_rt.parameters()
        sharded_rt.parameters()
        with tracing() as serial_tracer:
            serial_rt.run(ProblemBatch.single("lu", matrices))
        with tracing() as sharded_tracer:
            report = sharded_rt.run(ProblemBatch.single("lu", matrices))
        assert report.mode == "process"
        shard_tags = {
            e.args["shard"]
            for e in sharded_tracer.events
            if e.args and "shard" in e.args
        }
        assert shard_tags == set(range(report.chunks))
        assert report.chunks > 1
        assert any(e.name == "runtime.launch" for e in sharded_tracer.events)
        # Worker registries fold into the launch tracer exactly as the
        # serial path's do (calibration counters ride along identically).
        assert sharded_tracer.counters.snapshot() == serial_tracer.counters.snapshot()

    def test_untraced_launch_emits_nothing(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=7)
        report = _runtime(tmp_path, workers=1).run(ProblemBatch.single("lu", matrices))
        assert report.counters.value("flops.groups") > 0

    def test_report_summary_is_flat(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=8)
        report = _runtime(tmp_path, workers=1).run(ProblemBatch.single("lu", matrices))
        summary = report.summary()
        assert summary["problems"] == 8
        assert summary["groups"][0]["op"] == "lu"
        assert summary["groups"][0]["gflops"] > 0


class TestDegradation:
    def test_worker_failure_degrades_to_serial_with_warning(
        self, tmp_path, monkeypatch
    ):
        def broken_pool(self, payloads):
            raise OSError("simulated pool failure")

        monkeypatch.setattr(BatchRuntime, "_run_pool", broken_pool)
        matrices = diagonally_dominant_batch(20, 10, seed=9)
        runtime = _runtime(tmp_path, workers=4, chunk_cost=lu_flops(10) * 5)
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            report = runtime.run(ProblemBatch.single("lu", matrices))
        assert report.mode == "serial-fallback"
        assert np.array_equal(report.output, per_block_lu(matrices).output)

    def test_unknown_op_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown batched op"):
            _runtime(tmp_path, workers=1).run(
                ProblemBatch.single("svd", np.eye(4, dtype=np.float32))
            )

    def test_runtime_and_workers_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="either runtime or workers"):
            run_batched(
                "lu",
                np.eye(4, dtype=np.float32),
                runtime=_runtime(tmp_path),
                workers=2,
            )

    def test_supported_ops_listed(self):
        assert {"lu", "qr", "cholesky", "lu_pivot"} <= set(supported_ops())


class TestRuntimeCaches:
    def test_run_calibrates_once_per_device(self, tmp_path):
        matrices = diagonally_dominant_batch(8, 8, seed=10)
        batch = ProblemBatch.single("lu", matrices)
        with tracing() as cold:
            _runtime(tmp_path, workers=1).run(batch)
        with tracing() as warm:
            report = _runtime(tmp_path, workers=1).run(batch)
        cold_spans = [e for e in cold.events if e.name == "calibrate" and e.ph == "X"]
        warm_spans = [e for e in warm.events if e.name == "calibrate" and e.ph == "X"]
        assert len(cold_spans) == 1
        assert len(warm_spans) == 0
        assert report.params is not None

    def test_caches_disabled(self, tmp_path):
        runtime = BatchRuntime(workers=1, use_caches=False)
        assert runtime.calibration_cache is None
        assert runtime.dispatch_cache is None
        assert runtime.parameters() is runtime.parameters()
