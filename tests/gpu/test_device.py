"""Device-spec invariants and the Table-I figures."""


import pytest

from repro.gpu import G80, GTX480, QUADRO_6000


class TestQuadro6000TableI:
    """The preset must reproduce Table I of the paper."""

    def test_multiprocessors(self):
        assert QUADRO_6000.num_sms == 14

    def test_total_fpus(self):
        assert QUADRO_6000.total_fpus == 448

    def test_core_clock(self):
        assert QUADRO_6000.clock_hz == pytest.approx(1.15e9)

    def test_max_registers_per_thread(self):
        assert QUADRO_6000.max_registers_per_thread == 64

    def test_global_bandwidth(self):
        assert QUADRO_6000.global_bandwidth == pytest.approx(144e9)

    def test_global_memory_size(self):
        assert QUADRO_6000.global_mem_bytes == 6 * 1024**3

    def test_peak_sp_flops(self):
        # Table I: 1.03 TFlop/s
        assert QUADRO_6000.peak_sp_flops == pytest.approx(1.03e12, rel=0.01)

    def test_peak_sp_per_fpu(self):
        # Table I: 2.3 GFlop/s per FPU
        assert QUADRO_6000.peak_sp_per_fpu == pytest.approx(2.3e9, rel=0.01)

    def test_peak_shared_bandwidth(self):
        # Section II-B1: 14 units * 32 banks * 4 B * 575 MHz = 1030 GB/s
        assert QUADRO_6000.peak_shared_bandwidth == pytest.approx(1030e9, rel=0.01)

    def test_l2_size(self):
        assert QUADRO_6000.l2_bytes == 768 * 1024

    def test_pipeline_latency_is_gamma(self):
        # Table IV: 18 cycles per FP pipeline pass.
        assert QUADRO_6000.pipeline_latency == 18

    def test_shared_latency(self):
        # Table III / IV: 27 cycles.
        assert QUADRO_6000.shared_latency == 27

    def test_global_latency(self):
        # Table III / IV: 570 cycles.
        assert QUADRO_6000.global_latency == 570


class TestSyncLatency:
    def test_64_threads_matches_table_iv(self):
        assert QUADRO_6000.sync_latency(64) == 46

    def test_monotone_in_threads(self):
        values = [QUADRO_6000.sync_latency(t) for t in range(32, 1056, 32)]
        assert values == sorted(values)

    def test_zero_threads_costs_nothing(self):
        assert QUADRO_6000.sync_latency(0) == 0

    def test_partial_warp_rounds_up(self):
        assert QUADRO_6000.sync_latency(33) == QUADRO_6000.sync_latency(64)

    def test_figure2_magnitude_at_1024_threads(self):
        # Figure 2 reaches roughly 170-200 cycles at 1024 threads/SM.
        assert 150 <= QUADRO_6000.sync_latency(1024) <= 200


class TestUnitConversions:
    def test_cycles_seconds_roundtrip(self):
        s = QUADRO_6000.cycles_to_seconds(1.15e9)
        assert s == pytest.approx(1.0)
        assert QUADRO_6000.seconds_to_cycles(s) == pytest.approx(1.15e9)

    def test_conversion_inverse_property(self):
        for cycles in (1, 570, 1e6):
            roundtrip = QUADRO_6000.seconds_to_cycles(
                QUADRO_6000.cycles_to_seconds(cycles)
            )
            assert roundtrip == pytest.approx(cycles)


class TestOtherPresets:
    def test_g80_shared_latency_matches_volkov(self):
        # Section II-C1 validates the methodology against Volkov's 36 cycles.
        assert G80.shared_latency == 36

    def test_g80_has_no_l2(self):
        assert G80.l2_bytes == 0

    def test_gtx480_is_gf100_like(self):
        assert GTX480.max_registers_per_thread == 64
        assert GTX480.shared_banks == 32

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            QUADRO_6000.num_sms = 15  # type: ignore[misc]

    def test_warps_per_block_limit(self):
        assert QUADRO_6000.warps_per_block_limit == 32
