"""Property tests on the simulator's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import QUADRO_6000, BlockEngine, MemorySystem


class TestDeterminism:
    @given(
        stride=st.integers(min_value=1, max_value=1 << 16),
        hops=st.integers(min_value=16, max_value=256),
    )
    @settings(max_examples=20, deadline=None)
    def test_chase_is_deterministic(self, stride, hops):
        ms = MemorySystem(QUADRO_6000)
        a = ms.chase(stride, 1 << 22, hops=hops)
        b = ms.chase(stride, 1 << 22, hops=hops)
        assert a.avg_latency_cycles == b.avg_latency_cycles

    def test_engine_charges_are_order_independent_totals(self):
        ops = [("flops", 10), ("shared", 4), ("sync", None), ("flops", 3)]

        def run(sequence):
            eng = BlockEngine(QUADRO_6000, 64, 32, account_overhead=False)
            for op, arg in sequence:
                if op == "flops":
                    eng.charge_flops(arg)
                elif op == "shared":
                    eng.charge_shared(arg)
                else:
                    eng.sync()
            return eng.clock.now

        assert run(ops) == run(list(reversed(ops)))


class TestMonotonicity:
    @given(nbytes=st.integers(min_value=4, max_value=1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_block_transfer_monotone_in_bytes(self, nbytes):
        ms = MemorySystem(QUADRO_6000)
        assert ms.block_transfer_cycles(nbytes + 4, 8) > ms.block_transfer_cycles(
            nbytes, 8
        )

    @given(
        ops=st.integers(min_value=0, max_value=1000),
        extra=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_work_never_cheaper(self, ops, extra):
        a = BlockEngine(QUADRO_6000, 64, 32, account_overhead=False)
        b = BlockEngine(QUADRO_6000, 64, 32, account_overhead=False)
        a.charge_flops(ops)
        b.charge_flops(ops + extra)
        assert b.clock.now > a.clock.now

    @given(regs=st.integers(min_value=65, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_spilling_kernels_always_pay(self, regs):
        fits = BlockEngine(QUADRO_6000, 64, 60, account_overhead=False)
        spills = BlockEngine(QUADRO_6000, 64, regs, account_overhead=False)
        fits.charge_flops(50)
        spills.charge_flops(50)
        assert spills.clock.now > fits.clock.now


class TestBreakdownConsistency:
    @given(
        flops=st.integers(min_value=0, max_value=500),
        shared=st.integers(min_value=0, max_value=100),
        syncs=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_breakdown_sums_to_total(self, flops, shared, syncs):
        eng = BlockEngine(QUADRO_6000, 64, 32, account_overhead=True)
        eng.charge_flops(flops)
        eng.charge_shared(shared)
        for _ in range(syncs):
            eng.sync()
        assert eng.clock.breakdown().total == pytest.approx(eng.clock.now)

    def test_throughput_scales_with_batch_waves(self):
        eng = BlockEngine(QUADRO_6000, 64, 32)
        eng.charge_flops(100)
        res = eng.result(flops_per_block=1000)
        resident = res.occupancy.blocks_per_chip
        one_wave = res.throughput_gflops(resident)
        two_waves = res.throughput_gflops(2 * resident)
        assert one_wave == pytest.approx(two_waves)
        assert res.throughput_gflops(resident + 1) < one_wave
