"""Fast-math (22-mantissa-bit) emulation accuracy bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    MANTISSA_BITS,
    fast_divide,
    fast_reciprocal,
    fast_rsqrt,
    fast_sqrt,
    truncate_mantissa,
)

#: Relative error bound for a result correct to 22 of 24 mantissa bits.
REL_BOUND_F32 = 2.0 ** -(MANTISSA_BITS - 1)

finite_pos = st.floats(
    min_value=1e-30, max_value=1e30, allow_nan=False, allow_infinity=False
)
finite = st.floats(
    min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
).filter(lambda x: abs(x) > 1e-30)


class TestTruncation:
    def test_exact_values_unchanged(self):
        # Values representable in 22 bits pass through exactly.
        x = np.float32(1.5)
        assert truncate_mantissa(x) == x

    def test_truncation_error_bounded_f32(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.1, 10.0, 1000).astype(np.float32)
        t = truncate_mantissa(x)
        rel = np.abs((t - x) / x)
        assert rel.max() <= REL_BOUND_F32

    def test_truncation_error_bounded_f64(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.1, 10.0, 1000)
        t = truncate_mantissa(x, bits=40)
        rel = np.abs((t - x) / x)
        assert rel.max() <= 2.0**-39

    def test_complex64_componentwise(self):
        z = np.array([1.2345678 + 2.3456789j], dtype=np.complex64)
        t = truncate_mantissa(z)
        assert t.dtype == np.complex64
        assert abs(t[0].real - z[0].real) <= REL_BOUND_F32 * abs(z[0].real)
        assert abs(t[0].imag - z[0].imag) <= REL_BOUND_F32 * abs(z[0].imag)

    def test_full_precision_requested_is_identity(self):
        x = np.float32(1.2345678)
        assert truncate_mantissa(x, bits=24) == x

    def test_unsupported_dtype_raises(self):
        with pytest.raises(TypeError):
            truncate_mantissa(np.array([1], dtype=np.int32))

    def test_does_not_mutate_input(self):
        x = np.array([1.2345678], dtype=np.float32)
        before = x.copy()
        truncate_mantissa(x)
        np.testing.assert_array_equal(x, before)


class TestFastOps:
    @given(finite)
    @settings(max_examples=200, deadline=None)
    def test_reciprocal_within_22_bits(self, x):
        x32 = np.float32(x)
        if x32 == 0 or not np.isfinite(1.0 / x32):
            return
        r = fast_reciprocal(x32)
        exact = 1.0 / np.float64(x32)
        assert abs((np.float64(r) - exact) / exact) <= 2 * REL_BOUND_F32

    @given(finite, finite)
    @settings(max_examples=200, deadline=None)
    def test_divide_within_22_bits(self, a, b):
        a32, b32 = np.float32(a), np.float32(b)
        with np.errstate(over="ignore", divide="ignore"):
            quotient = a32 / b32
        # Skip subnormal results: the 22-bit guarantee (like the hardware
        # fast path, which flushes to zero) only covers normal numbers.
        if b32 == 0 or not np.isfinite(quotient) or abs(quotient) < 1.2e-38:
            return
        q = fast_divide(a32, b32)
        exact = np.float64(a32) / np.float64(b32)
        assert abs((np.float64(q) - exact) / exact) <= 4 * REL_BOUND_F32

    @given(finite_pos)
    @settings(max_examples=200, deadline=None)
    def test_sqrt_within_22_bits(self, x):
        x32 = np.float32(x)
        if x32 == 0 or not np.isfinite(x32):
            return
        s = fast_sqrt(x32)
        exact = np.sqrt(np.float64(x32))
        assert abs((np.float64(s) - exact) / exact) <= 4 * REL_BOUND_F32

    def test_sqrt_of_zero_is_zero(self):
        assert fast_sqrt(np.float32(0.0)) == 0.0

    def test_sqrt_of_zero_array(self):
        out = fast_sqrt(np.array([0.0, 4.0], dtype=np.float32))
        assert out[0] == 0.0
        assert out[1] == pytest.approx(2.0, rel=1e-6)

    def test_rsqrt_matches_inverse_sqrt(self):
        x = np.array([0.25, 1.0, 4.0, 1e6], dtype=np.float32)
        np.testing.assert_allclose(fast_rsqrt(x), 1.0 / np.sqrt(x), rtol=1e-6)

    def test_fastmath_differs_from_ieee_somewhere(self):
        # The emulation must actually lose precision relative to IEEE,
        # otherwise the accuracy experiments are vacuous.
        rng = np.random.default_rng(2)
        x = rng.uniform(1.0, 2.0, 10000).astype(np.float32)
        ieee = (np.float32(1.0) / x).astype(np.float32)
        fast = fast_reciprocal(x)
        assert np.any(ieee != fast)

    def test_vector_shapes_preserved(self):
        x = np.ones((3, 4, 5), dtype=np.float32) * 3.0
        assert fast_reciprocal(x).shape == (3, 4, 5)
        assert fast_sqrt(x).shape == (3, 4, 5)
