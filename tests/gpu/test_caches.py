"""Tag-cache (L1/L2) and TLB state-machine behaviour."""

import pytest

from repro.gpu import G80, QUADRO_6000, L1Cache, L2Cache, TagCache, Tlb


class TestTagCache:
    def test_first_access_misses_second_hits(self):
        c = TagCache(1024, 128, 2)
        assert c.access(0) is False
        assert c.access(0) is True

    def test_same_line_different_offsets_hit(self):
        c = TagCache(1024, 128, 2)
        c.access(0)
        assert c.access(127) is True
        assert c.access(128) is False

    def test_lru_eviction_within_set(self):
        # 2 sets x 2 ways, 128B lines: lines 0,2,4 all map to set 0.
        c = TagCache(512, 128, 2)
        c.access(0)
        c.access(2 * 128)
        c.access(4 * 128)  # evicts line 0
        assert c.access(0) is False

    def test_lru_keeps_recently_used(self):
        c = TagCache(512, 128, 2)
        c.access(0)
        c.access(2 * 128)
        c.access(0)  # refresh line 0
        c.access(4 * 128)  # evicts line 2*128, not line 0
        assert c.access(0) is True

    def test_working_set_within_capacity_all_hits_after_warmup(self):
        c = TagCache(64 * 1024, 128, 16)
        lines = [i * 128 for i in range(64 * 1024 // 128)]
        for a in lines:
            c.access(a)
        assert all(c.access(a) for a in lines)

    def test_zero_size_cache_never_hits(self):
        c = TagCache(0, 128, 1)
        c.access(0)
        assert c.access(0) is False
        assert not c.enabled

    def test_hit_rate_statistics(self):
        c = TagCache(1024, 128, 2)
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(0.5)

    def test_reset_clears_state(self):
        c = TagCache(1024, 128, 2)
        c.access(0)
        c.reset()
        assert c.access(0) is False
        assert c.misses == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            TagCache(1024, 0, 2)


class TestDeviceCaches:
    def test_l2_sized_from_device(self):
        l2 = L2Cache(QUADRO_6000)
        assert l2.num_sets * l2.ways * l2.line_bytes == 768 * 1024

    def test_g80_l2_disabled(self):
        l2 = L2Cache(G80)
        assert not l2.enabled

    def test_l1_sized_from_device(self):
        l1 = L1Cache(QUADRO_6000)
        assert l1.num_sets * l1.ways * l1.line_bytes == 16 * 1024


class TestTlb:
    def test_page_locality_hits(self):
        tlb = Tlb(QUADRO_6000)
        tlb.access(0)
        assert tlb.access(QUADRO_6000.page_bytes - 1) is True

    def test_new_page_misses(self):
        tlb = Tlb(QUADRO_6000)
        tlb.access(0)
        assert tlb.access(QUADRO_6000.page_bytes) is False

    def test_capacity_eviction_is_lru(self):
        tlb = Tlb(QUADRO_6000)
        page = QUADRO_6000.page_bytes
        for i in range(QUADRO_6000.tlb_entries + 1):
            tlb.access(i * page)
        assert tlb.access(0) is False  # page 0 was LRU and evicted
        assert tlb.access(QUADRO_6000.tlb_entries * page) is True

    def test_reach(self):
        tlb = Tlb(QUADRO_6000)
        assert tlb.reach_bytes == QUADRO_6000.tlb_entries * QUADRO_6000.page_bytes

    def test_reset(self):
        tlb = Tlb(QUADRO_6000)
        tlb.access(0)
        tlb.reset()
        assert tlb.access(0) is False
        assert tlb.hits == 0
