"""Banked shared-memory semantics: storage, conflicts, cost."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SharedMemoryOverflowError
from repro.gpu import QUADRO_6000, SharedMemory, conflict_degree


class TestConflictDegree:
    def test_stride_one_is_conflict_free(self):
        assert conflict_degree(list(range(32)), banks=32) == 1

    def test_same_word_broadcasts(self):
        assert conflict_degree([5] * 32, banks=32) == 1

    def test_stride_two_has_two_way_conflicts(self):
        assert conflict_degree([2 * i for i in range(32)], banks=32) == 2

    def test_stride_32_serializes_fully(self):
        assert conflict_degree([32 * i for i in range(32)], banks=32) == 32

    def test_odd_stride_is_conflict_free(self):
        # Classic trick: padding to an odd stride removes conflicts.
        assert conflict_degree([33 * i for i in range(32)], banks=32) == 1

    def test_empty_access_costs_one_pass(self):
        assert conflict_degree([], banks=32) == 1

    @given(st.lists(st.integers(min_value=0, max_value=4096), max_size=32))
    def test_degree_bounds(self, addrs):
        d = conflict_degree(addrs, banks=32)
        assert 1 <= d <= 32


class TestStorage:
    def test_write_then_read_roundtrip(self):
        mem = SharedMemory(QUADRO_6000, words=16, batch=3)
        mem.write(np.arange(4), np.ones((3, 4), dtype=np.float32) * 2.5)
        out = mem.read(np.arange(4))
        np.testing.assert_array_equal(out, np.full((3, 4), 2.5, dtype=np.float32))

    def test_scalar_slot(self):
        mem = SharedMemory(QUADRO_6000, words=4, batch=2)
        mem.write(0, [1.0, 2.0])
        np.testing.assert_array_equal(mem.read(0), [1.0, 2.0])

    def test_initialized_to_zero(self):
        mem = SharedMemory(QUADRO_6000, words=8)
        assert np.all(mem.data == 0)

    def test_complex_dtype(self):
        mem = SharedMemory(QUADRO_6000, words=4, dtype=np.complex64)
        mem.write(1, 1 + 2j)
        assert mem.read(1)[0] == np.complex64(1 + 2j)

    def test_overflow_raises(self):
        words = QUADRO_6000.shared_mem_per_sm // 4 + 1
        with pytest.raises(SharedMemoryOverflowError):
            SharedMemory(QUADRO_6000, words=words)

    def test_complex_counts_double_footprint(self):
        words = QUADRO_6000.shared_mem_per_sm // 8 + 1
        with pytest.raises(SharedMemoryOverflowError):
            SharedMemory(QUADRO_6000, words=words, dtype=np.complex64)

    def test_bytes_property(self):
        assert SharedMemory(QUADRO_6000, words=10).bytes == 40
        assert SharedMemory(QUADRO_6000, words=10, dtype=np.complex64).bytes == 80


class TestAccessCycles:
    def test_conflict_free_costs_base_latency(self):
        mem = SharedMemory(QUADRO_6000, words=64)
        assert mem.access_cycles(degree=1) == QUADRO_6000.shared_latency

    def test_conflicts_add_replays(self):
        mem = SharedMemory(QUADRO_6000, words=64)
        assert mem.access_cycles(degree=4) == QUADRO_6000.shared_latency + 3

    def test_cycles_from_addresses(self):
        mem = SharedMemory(QUADRO_6000, words=2048)
        stride32 = [32 * i for i in range(32)]
        assert mem.access_cycles(stride32) == QUADRO_6000.shared_latency + 31

    def test_complex_words_span_two_banks(self):
        mem = SharedMemory(QUADRO_6000, words=2048, dtype=np.complex64)
        # Complex stride-16 slots = real stride-32 words: full serialization.
        degree = mem.conflict_degree([16 * i for i in range(32)])
        assert degree == 32

    def test_invalid_degree_rejected(self):
        mem = SharedMemory(QUADRO_6000, words=4)
        with pytest.raises(ValueError):
            mem.access_cycles(degree=0)
