"""Occupancy-calculator behaviour, including the paper's launch shapes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LaunchConfigurationError
from repro.gpu import QUADRO_6000, occupancy


class TestPaperConfigurations:
    def test_64_threads_64_regs_gives_8_blocks(self):
        # Section V-C: "eight thread blocks per multiprocessor for a total
        # of 14 x 8 = 112 problems simultaneously".
        occ = occupancy(QUADRO_6000, 64, 64)
        assert occ.blocks_per_sm == 8
        assert occ.blocks_per_chip == 112

    def test_256_threads_64_regs_gives_2_blocks(self):
        # Figure 9: "switch from using 64 threads per block to 256 ...
        # reduces the number of simultaneous blocks ... from 8 to 2".
        occ = occupancy(QUADRO_6000, 256, 64)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "registers"

    def test_small_blocks_hit_block_slot_limit(self):
        occ = occupancy(QUADRO_6000, 32, 16)
        assert occ.blocks_per_sm == QUADRO_6000.max_blocks_per_sm
        assert occ.limiter == "blocks"


class TestLimits:
    def test_thread_slot_limit(self):
        occ = occupancy(QUADRO_6000, 1024, 16)
        assert occ.blocks_per_sm == 1  # 1536 // 1024
        assert occ.active_threads_per_sm == 1024

    def test_shared_memory_limit(self):
        occ = occupancy(
            QUADRO_6000, 64, 16, shared_bytes_per_block=20 * 1024
        )
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared"

    def test_too_many_threads_per_block_raises(self):
        with pytest.raises(LaunchConfigurationError):
            occupancy(QUADRO_6000, 2048, 16)

    def test_zero_threads_raises(self):
        with pytest.raises(LaunchConfigurationError):
            occupancy(QUADRO_6000, 0, 16)

    def test_impossible_shared_request_raises(self):
        with pytest.raises(LaunchConfigurationError):
            occupancy(
                QUADRO_6000, 64, 16,
                shared_bytes_per_block=QUADRO_6000.shared_mem_per_sm + 1,
            )

    def test_negative_resources_raise(self):
        with pytest.raises(LaunchConfigurationError):
            occupancy(QUADRO_6000, 64, -1)


class TestDerivedQuantities:
    def test_active_warps(self):
        occ = occupancy(QUADRO_6000, 96, 20)
        assert occ.active_warps_per_sm == occ.blocks_per_sm * 3

    def test_occupancy_fraction_bounded(self):
        occ = occupancy(QUADRO_6000, 256, 20)
        assert 0.0 < occ.occupancy_fraction <= 1.0

    @given(
        threads=st.integers(min_value=1, max_value=1024),
        regs=st.integers(min_value=1, max_value=63),
    )
    def test_never_exceeds_hardware_limits(self, threads, regs):
        try:
            occ = occupancy(QUADRO_6000, threads, regs)
        except LaunchConfigurationError:
            return
        assert 1 <= occ.blocks_per_sm <= QUADRO_6000.max_blocks_per_sm
        assert occ.active_threads_per_sm <= QUADRO_6000.max_threads_per_sm

    @given(regs=st.integers(min_value=1, max_value=62))
    def test_more_registers_never_increases_blocks(self, regs):
        a = occupancy(QUADRO_6000, 128, regs).blocks_per_sm
        b = occupancy(QUADRO_6000, 128, regs + 2).blocks_per_sm
        assert b <= a
