"""Block-engine cost accounting."""

import numpy as np
import pytest

from repro.errors import RegisterFileOverflowError
from repro.gpu import QUADRO_6000, BlockEngine
from repro.gpu.simt import OVERHEAD_PER_EVENT


def make_engine(**kw):
    defaults = dict(
        device=QUADRO_6000,
        threads_per_block=64,
        registers_per_thread=56,
        batch=4,
        account_overhead=False,
    )
    defaults.update(kw)
    return BlockEngine(**defaults)


class TestChargeFlops:
    def test_flops_cost_gamma_each(self):
        eng = make_engine()
        eng.charge_flops(10)
        assert eng.clock.category("compute") == 10 * QUADRO_6000.pipeline_latency

    def test_useful_flops_default_counts_all_threads(self):
        eng = make_engine()
        eng.charge_flops(3)
        assert eng.result().flops_per_block == 3 * 64

    def test_useful_flops_override(self):
        eng = make_engine()
        eng.charge_flops(3, useful_flops=10)
        assert eng.result().flops_per_block == 10

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            make_engine().charge_flops(-1)

    def test_spilling_kernel_pays_extra(self):
        fits = make_engine(registers_per_thread=60)
        spills = make_engine(registers_per_thread=90)
        fits.charge_flops(100)
        spills.charge_flops(100)
        assert spills.clock.now > fits.clock.now

    def test_allow_spill_false_raises(self):
        with pytest.raises(RegisterFileOverflowError):
            make_engine(registers_per_thread=90, allow_spill=False)


class TestSpecialOps:
    def test_fast_div_cheaper_than_precise(self):
        fast = make_engine(fast_math=True)
        precise = make_engine(fast_math=False)
        fast.charge_div()
        precise.charge_div()
        assert fast.clock.now < precise.clock.now

    def test_fast_sqrt_cheaper_than_precise(self):
        fast = make_engine(fast_math=True)
        precise = make_engine(fast_math=False)
        fast.charge_sqrt()
        precise.charge_sqrt()
        assert fast.clock.now < precise.clock.now


class TestSharedAndSync:
    def test_shared_access_cost(self):
        eng = make_engine()
        eng.charge_shared(4)
        assert eng.clock.category("shared") == 4 * QUADRO_6000.shared_latency

    def test_bank_conflicts_add_replays(self):
        a = make_engine()
        b = make_engine()
        a.charge_shared(4, degree=1)
        b.charge_shared(4, degree=8)
        assert b.clock.now == a.clock.now + 4 * 7

    def test_sync_uses_block_thread_count(self):
        eng = make_engine(threads_per_block=64)
        eng.sync()
        assert eng.clock.category("sync") == 46


class TestGlobalAndShared:
    def test_global_charge_uses_occupancy(self):
        eng = make_engine()
        eng.charge_global(12544)
        # 64 threads / 56 regs -> 8 blocks/SM -> 112 resident blocks.
        assert eng.occupancy.blocks_per_chip == 112
        assert 8000 < eng.clock.category("global") < 10000

    def test_allocate_shared_counts_bytes(self):
        eng = make_engine()
        eng.allocate_shared(100)
        assert eng.shared_bytes == 400

    def test_shared_allocation_lowers_occupancy(self):
        eng = make_engine(registers_per_thread=16)
        eng.allocate_shared(5 * 1024)  # 20 KB: only 2 blocks fit
        assert eng.occupancy.blocks_per_sm == 2

    def test_shared_arrays_are_functional(self):
        eng = make_engine(batch=2)
        mem = eng.allocate_shared(8)
        mem.write(3, [1.5, 2.5])
        np.testing.assert_array_equal(mem.read(3), [1.5, 2.5])


class TestOverheadAccounting:
    def test_overhead_charged_when_enabled(self):
        eng = make_engine(account_overhead=True)
        eng.charge_flops(1)
        assert eng.clock.category("overhead") == OVERHEAD_PER_EVENT

    def test_no_overhead_when_disabled(self):
        eng = make_engine(account_overhead=False)
        eng.charge_flops(1)
        eng.charge_shared(1)
        assert eng.clock.category("overhead") == 0

    def test_measurement_overhead(self):
        eng = make_engine(account_overhead=True)
        eng.charge_measurement()
        assert eng.clock.category("overhead") > 0


class TestLaunchResult:
    def test_phase_totals_recorded(self):
        eng = make_engine()
        with eng.phase("panel0"):
            eng.charge_flops(10)
        res = eng.result()
        assert "panel0" in res.phase_totals

    def test_throughput_steady_state(self):
        eng = make_engine()
        eng.charge_flops(100)
        res = eng.result(flops_per_block=1000)
        expected = (
            1000 * 112 / QUADRO_6000.cycles_to_seconds(eng.clock.now) / 1e9
        )
        assert res.throughput_gflops() == pytest.approx(expected)

    def test_partial_wave_lowers_throughput(self):
        eng = make_engine()
        eng.charge_flops(100)
        res = eng.result(flops_per_block=1000)
        full = res.throughput_gflops(112 * 4)
        ragged = res.throughput_gflops(112 * 3 + 1)
        assert ragged < full

    def test_throughput_rejects_empty_batch(self):
        eng = make_engine()
        eng.charge_flops(1)
        with pytest.raises(ValueError):
            eng.result().throughput_gflops(0)
