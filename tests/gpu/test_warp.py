"""Warp scheduling helpers."""

import pytest

from repro.gpu import QUADRO_6000, exposed_latency, issue_cycles, warps_in_block


class TestWarpsInBlock:
    def test_exact_multiple(self):
        assert warps_in_block(QUADRO_6000, 64) == 2

    def test_partial_warp_rounds_up(self):
        assert warps_in_block(QUADRO_6000, 33) == 2

    def test_single_thread(self):
        assert warps_in_block(QUADRO_6000, 1) == 1

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            warps_in_block(QUADRO_6000, 0)


class TestExposedLatency:
    def test_single_warp_sees_full_latency(self):
        assert exposed_latency(570, 1) == 570

    def test_enough_warps_hide_everything(self):
        assert exposed_latency(570, 600) == 0.0

    def test_partial_hiding(self):
        assert exposed_latency(100, 51, issue_interval=1.0) == 50.0

    def test_never_negative(self):
        assert exposed_latency(10, 1000) == 0.0

    def test_zero_warps_rejected(self):
        with pytest.raises(ValueError):
            exposed_latency(100, 0)


class TestIssueCycles:
    def test_single_warp(self):
        assert issue_cycles(100, 1) == 100

    def test_warps_serialize_issue(self):
        assert issue_cycles(100, 4) == 400

    def test_dual_issue_halves(self):
        assert issue_cycles(100, 4, dual_issue=True) == 200

    def test_zero_warps_rejected(self):
        with pytest.raises(ValueError):
            issue_cycles(100, 0)
