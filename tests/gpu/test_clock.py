"""Cycle-clock accounting semantics."""

import pytest

from repro.gpu import CycleBreakdown, CycleClock, TraceEvent


class TestCharging:
    def test_starts_at_zero(self):
        assert CycleClock().now == 0.0

    def test_accumulates_by_category(self):
        clk = CycleClock()
        clk.charge(10, "compute")
        clk.charge(5, "compute")
        clk.charge(7, "shared")
        assert clk.category("compute") == 15
        assert clk.category("shared") == 7
        assert clk.now == 22

    def test_unknown_category_reads_zero(self):
        assert CycleClock().category("nonexistent") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CycleClock().charge(-1, "compute")

    def test_reset(self):
        clk = CycleClock()
        clk.charge(10, "compute")
        clk.reset()
        assert clk.now == 0.0
        assert clk.breakdown() == {}


class TestPhases:
    def test_phase_tags_charges(self):
        clk = CycleClock()
        with clk.phase("panel0"):
            clk.charge(100, "compute")
            clk.charge(27, "shared")
        clk.charge(46, "sync")  # outside any phase
        assert clk.phase_breakdown("panel0").total == 127
        assert clk.phase_totals() == {"panel0": 127}
        assert clk.now == 173

    def test_nested_phases_charge_innermost(self):
        clk = CycleClock()
        with clk.phase("outer"):
            with clk.phase("inner"):
                clk.charge(10, "compute")
            clk.charge(1, "compute")
        assert clk.phase_breakdown("inner").total == 10
        assert clk.phase_breakdown("outer").total == 1

    def test_phase_stack_restored_after_exception(self):
        clk = CycleClock()
        with pytest.raises(RuntimeError):
            with clk.phase("p"):
                raise RuntimeError("boom")
        clk.charge(5, "compute")
        assert clk.phase_breakdown("p").total == 0

    def test_unknown_phase_is_empty(self):
        assert CycleClock().phase_breakdown("nope").total == 0.0


class TestBreakdown:
    def test_total(self):
        bd = CycleBreakdown({"compute": 10.0, "sync": 5.0})
        assert bd.total == 15.0

    def test_addition_merges_categories(self):
        a = CycleBreakdown({"compute": 10.0})
        b = CycleBreakdown({"compute": 5.0, "shared": 2.0})
        merged = a + b
        assert merged == {"compute": 15.0, "shared": 2.0}

    def test_scaled(self):
        bd = CycleBreakdown({"compute": 10.0}).scaled(2.5)
        assert bd["compute"] == 25.0

    def test_addition_does_not_mutate_operands(self):
        a = CycleBreakdown({"compute": 10.0})
        b = CycleBreakdown({"compute": 1.0})
        _ = a + b
        assert a["compute"] == 10.0
        assert b["compute"] == 1.0


class TestTracing:
    def test_off_by_default(self):
        clk = CycleClock()
        clk.charge(10, "compute")
        assert clk.events == []

    def test_events_recorded_in_order(self):
        clk = CycleClock(trace=True)
        with clk.phase("p0"):
            clk.charge(10, "compute")
        clk.charge(5, "sync")
        assert [e.category for e in clk.events] == ["compute", "sync"]
        assert clk.events[0].start == 0
        assert clk.events[1].start == 10
        assert clk.events[0].phase == "p0"
        assert clk.events[1].phase is None

    def test_events_sum_to_total(self):
        clk = CycleClock(trace=True)
        for i in range(5):
            clk.charge(i + 1, "compute")
        assert sum(e.cycles for e in clk.events) == clk.now

    def test_reset_clears_events(self):
        clk = CycleClock(trace=True)
        clk.charge(1, "compute")
        clk.reset()
        assert clk.events == []

    def test_engine_trace_passthrough(self):
        from repro.gpu import QUADRO_6000, BlockEngine

        eng = BlockEngine(QUADRO_6000, 64, 32, trace=True)
        eng.charge_flops(3)
        eng.sync()
        assert len(eng.clock.events) >= 2
        assert isinstance(eng.clock.events[0], TraceEvent)
