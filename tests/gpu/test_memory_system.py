"""Composed memory-hierarchy behaviour: Table II/III and Figure 1 shapes."""

import pytest

from repro.gpu import QUADRO_6000, DramModel, MemorySystem

ARRAY_WORDS = 64 * 1024 * 1024  # the paper chases through up to 64M words


@pytest.fixture(scope="module")
def ms():
    return MemorySystem(QUADRO_6000)


class TestBandwidth:
    def test_copy_bandwidth_near_paper_108(self, ms):
        gbs = ms.stream_bandwidth("copy") / 1e9
        assert gbs == pytest.approx(108, rel=0.05)

    def test_memcpy_bandwidth_near_paper_84(self, ms):
        gbs = ms.stream_bandwidth("memcpy") / 1e9
        assert gbs == pytest.approx(84, rel=0.05)

    def test_copy_is_about_75_percent_of_peak(self, ms):
        eff = ms.stream_bandwidth("copy") / QUADRO_6000.global_bandwidth
        assert eff == pytest.approx(0.75, abs=0.03)

    def test_read_beats_copy_beats_memcpy(self, ms):
        read = ms.stream_bandwidth("read")
        copy = ms.stream_bandwidth("copy")
        memcpy = ms.stream_bandwidth("memcpy")
        assert read > copy > memcpy

    def test_nothing_exceeds_pin_bandwidth(self, ms):
        for kind in ("read", "copy", "memcpy"):
            assert ms.stream_bandwidth(kind) < QUADRO_6000.global_bandwidth

    def test_unknown_kind_rejected(self, ms):
        with pytest.raises(ValueError):
            ms.stream_bandwidth("teleport")


class TestChaseLatency:
    def test_row_miss_plateau_is_570(self, ms):
        # Table III: global latency 570 cycles (stride past the row size,
        # working set within TLB reach).
        r = ms.chase(2048, ARRAY_WORDS, hops=1024)
        assert r.avg_latency_cycles == pytest.approx(570, rel=0.02)

    def test_stride_one_is_cheap(self, ms):
        r = ms.chase(1, ARRAY_WORDS, hops=1024)
        assert r.avg_latency_cycles < 150
        assert r.l1_hit_rate > 0.9

    def test_latency_grows_with_stride(self, ms):
        lats = [
            ms.chase(s, ARRAY_WORDS, hops=512).avg_latency_cycles
            for s in (1, 8, 64, 512, 4096)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(lats, lats[1:]))

    def test_tlb_misses_at_huge_stride(self, ms):
        r = ms.chase(1 << 15, ARRAY_WORDS, hops=512)
        assert r.tlb_hit_rate < 0.05
        assert r.avg_latency_cycles > 600

    def test_figure1_dynamic_range(self, ms):
        # Figure 1 spans roughly 100 -> 600 cycles.
        low = ms.chase(1, ARRAY_WORDS, hops=512).avg_latency_cycles
        high = ms.chase(1 << 15, ARRAY_WORDS, hops=512).avg_latency_cycles
        assert high / low > 4

    def test_small_array_stays_cached(self, ms):
        # A 4KB working set lives in L1 after warmup: pure L1 latency.
        r = ms.chase(32, 1024, hops=256)
        assert r.avg_latency_cycles == pytest.approx(QUADRO_6000.l1_latency, rel=0.05)

    def test_l2_sized_working_set_hits_l2(self, ms):
        # Working set past L1 but within L2: latency near the L2 hit time.
        words = 512 * 1024 // 4  # 512 KB < 768 KB L2
        r = ms.chase(64, words, hops=2048)
        assert QUADRO_6000.l1_latency < r.avg_latency_cycles
        assert r.avg_latency_cycles <= QUADRO_6000.l2_latency * 1.1

    def test_invalid_args_rejected(self, ms):
        with pytest.raises(ValueError):
            ms.chase(0, 1024)
        with pytest.raises(ValueError):
            ms.chase(1, 0)


class TestBlockTransfer:
    def test_table_v_load_magnitude(self, ms):
        # Table V: a 56x56 SP matrix (12544 B) with 112 resident blocks
        # loads in ~8800-9100 cycles.
        cycles = ms.block_transfer_cycles(12544, concurrent_blocks=112)
        assert 8000 < cycles < 10000

    def test_scales_linearly_with_bytes(self, ms):
        one = ms.block_transfer_cycles(1000, 8)
        two = ms.block_transfer_cycles(2000, 8)
        assert two == pytest.approx(2 * one)

    def test_more_blocks_more_contention(self, ms):
        few = ms.block_transfer_cycles(4096, 8)
        many = ms.block_transfer_cycles(4096, 64)
        assert many > few

    def test_single_block_gets_full_bandwidth(self, ms):
        cycles = ms.block_transfer_cycles(4096, 1)
        expected = QUADRO_6000.seconds_to_cycles(4096 / ms.stream_bandwidth("copy"))
        assert cycles == pytest.approx(expected)

    def test_zero_blocks_rejected(self, ms):
        with pytest.raises(ValueError):
            ms.block_transfer_cycles(4096, 0)


class TestDramModel:
    def test_row_miss_costs_more_than_hit(self):
        d = DramModel(QUADRO_6000)
        assert d.access_latency(row_hit=False) > d.access_latency(row_hit=True)

    def test_row_miss_latency_is_global_latency(self):
        d = DramModel(QUADRO_6000)
        assert d.row_miss_latency == QUADRO_6000.global_latency

    def test_transfer_cycles_default_uses_copy_bandwidth(self):
        d = DramModel(QUADRO_6000)
        nbytes = 1 << 20
        expected = QUADRO_6000.seconds_to_cycles(nbytes / d.copy_bandwidth())
        assert d.transfer_cycles(nbytes) == pytest.approx(expected)
