"""Register allocation and spill accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RegisterFileOverflowError
from repro.gpu import QUADRO_6000, RegisterAllocation, registers_for_matrix


class TestAllocation:
    def test_within_limit_does_not_spill(self):
        alloc = RegisterAllocation(QUADRO_6000, 63)
        assert not alloc.spills
        assert alloc.resident == 63
        assert alloc.spill_fraction == 0.0

    def test_at_limit_does_not_spill(self):
        assert not RegisterAllocation(QUADRO_6000, 64).spills

    def test_beyond_limit_spills(self):
        alloc = RegisterAllocation(QUADRO_6000, 80)
        assert alloc.spills
        assert alloc.spilled == 16
        assert alloc.resident == 64
        assert alloc.spill_fraction == pytest.approx(16 / 80)

    def test_require_resident_raises_on_spill(self):
        with pytest.raises(RegisterFileOverflowError):
            RegisterAllocation(QUADRO_6000, 100).require_resident()

    def test_require_resident_passes_without_spill(self):
        RegisterAllocation(QUADRO_6000, 30).require_resident()

    def test_negative_request_rejected(self):
        with pytest.raises(ValueError):
            RegisterAllocation(QUADRO_6000, -1)

    def test_granted_rounds_to_allocation_unit(self):
        # Fermi grants registers in 2-per-thread units (64 per warp).
        assert RegisterAllocation(QUADRO_6000, 33).granted() == 34

    @given(st.integers(min_value=0, max_value=256))
    def test_resident_plus_spilled_equals_requested(self, n):
        alloc = RegisterAllocation(QUADRO_6000, n)
        assert alloc.resident + alloc.spilled == n

    @given(st.integers(min_value=1, max_value=256))
    def test_spill_fraction_in_unit_interval(self, n):
        frac = RegisterAllocation(QUADRO_6000, n).spill_fraction
        assert 0.0 <= frac < 1.0


class TestRegistersForMatrix:
    def test_small_real_matrix_fits_per_thread(self):
        # A 7x7 float matrix fits a thread's register file (Section IV).
        assert registers_for_matrix(7, 7) <= 64

    def test_8x8_real_matrix_spills_per_thread(self):
        # "For dimensions past 8 the problems no longer fit" (Figure 4).
        assert registers_for_matrix(8, 8) > 64

    def test_complex_elements_take_two_registers(self):
        real = registers_for_matrix(4, 4)
        cplx = registers_for_matrix(4, 4, complex_dtype=True)
        assert cplx - real == 16

    def test_monotone_in_tile_size(self):
        assert registers_for_matrix(3, 3) < registers_for_matrix(4, 4)

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            registers_for_matrix(-1, 2)

    def test_56x56_block_tile_is_resident(self):
        # 56x56 over 64 threads = 7x7 per thread: the paper's flagship size.
        regs = registers_for_matrix(7, 7)
        assert not RegisterAllocation(QUADRO_6000, regs).spills

    def test_64x64_block_tile_spills(self):
        # Figure 9: "false predictions at 64 ... due to register spilling".
        regs = registers_for_matrix(8, 8)
        assert RegisterAllocation(QUADRO_6000, regs).spills
