"""Fleet telemetry dashboard: rendering and CLI exit codes."""

from repro.observe.history import RunHistory, run_record
from repro.observe.metrics import (
    MetricsRegistry,
    write_metrics_snapshot,
    write_prometheus,
)
from repro.observe.report import main, render_report


def _summary(wall=0.5):
    return {
        "problems": 2048, "chunks": 4, "workers": 2, "mode": "process",
        "wall_s": wall,
        "groups": [{"op": "lu", "problems": 2048, "gflops": 100.0}],
    }


def _record(wall=0.5, regime="latency-bound"):
    return run_record(
        _summary(wall=wall),
        regimes=[{
            "label": "lu", "regime": regime, "dominant_term": "overhead",
            "measured_cycles": 10.0,
        }],
    )


def _history(tmp_path, walls=(0.5,) * 5, name="history.jsonl"):
    history = RunHistory(tmp_path / name)
    for wall in walls:
        history.append(_record(wall=wall))
    return history


def _registry():
    reg = MetricsRegistry()
    reg.inc("repro_cache_requests_total", 2, cache="calibration", outcome="hit")
    reg.inc("repro_cache_requests_total", 1, cache="calibration", outcome="miss")
    reg.inc("repro_cache_requests_total", 1, cache="dispatch", outcome="stale")
    return reg


class TestRender:
    def test_empty_history_points_at_quickstart(self, tmp_path):
        text, flags = render_report(
            RunHistory(tmp_path / "absent.jsonl"), None
        )
        assert "no run history" in text
        assert flags == []

    def test_sections_render_without_drift(self, tmp_path):
        text, flags = render_report(_history(tmp_path), _registry())
        assert "Recent runs" in text
        assert "Regime mix" in text
        assert "latency-bound" in text
        assert "Cache hit rates" in text
        assert "no drift" in text
        assert flags == []

    def test_cache_hit_rates_tabulated(self, tmp_path):
        text, _ = render_report(_history(tmp_path), _registry())
        # calibration: 2 hits of 3 requests; dispatch: stale-only.
        assert "67%" in text
        assert "calibration" in text and "dispatch" in text

    def test_no_registry_skips_cache_section(self, tmp_path):
        text, _ = render_report(_history(tmp_path), None)
        assert "Cache hit rates" not in text
        assert "no cache traffic" not in text

    def test_empty_registry_says_so(self, tmp_path):
        text, _ = render_report(_history(tmp_path), MetricsRegistry())
        assert "no cache traffic" in text

    def test_drift_flags_rendered_and_returned(self, tmp_path):
        history = _history(tmp_path, walls=(0.5,) * 5 + (0.9,))
        text, flags = render_report(history, None)
        assert "Drift flags" in text
        assert any(f.gauge == "summary.wall_s" for f in flags)


class TestMain:
    def _argv(self, tmp_path, history, registry=None, *extra):
        metrics = tmp_path / "metrics.json"
        write_metrics_snapshot(registry or _registry(), metrics)
        return [
            "--history", str(history.path), "--metrics", str(metrics), *extra
        ]

    def test_renders_and_exits_zero(self, tmp_path, capsys):
        history = _history(tmp_path)
        assert main(self._argv(tmp_path, history)) == 0
        out = capsys.readouterr().out
        assert "Recent runs" in out
        assert "Cache hit rates" in out

    def test_strict_fails_on_drift(self, tmp_path, capsys):
        history = _history(tmp_path, walls=(0.5,) * 5 + (0.9,))
        assert main(self._argv(tmp_path, history)) == 0
        assert main(self._argv(tmp_path, history, None, "--strict")) == 1

    def test_tolerance_option_widens_the_gate(self, tmp_path, capsys):
        history = _history(tmp_path, walls=(0.5,) * 5 + (0.9,))
        argv = self._argv(
            tmp_path, history, None, "--strict", "--tolerance", "0.95"
        )
        assert main(argv) == 0

    def test_reads_prometheus_snapshot(self, tmp_path, capsys):
        history = _history(tmp_path)
        prom = tmp_path / "metrics.prom"
        write_prometheus(_registry(), prom)
        code = main(["--history", str(history.path), "--metrics", str(prom)])
        assert code == 0
        assert "Cache hit rates" in capsys.readouterr().out

    def test_default_paths_follow_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        _history(tmp_path)  # lands at the default <cache dir>/history.jsonl
        # Only the .prom exposition exists: main() must fall back to it.
        write_prometheus(_registry(), tmp_path / "metrics.prom")
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Recent runs" in out
        assert "Cache hit rates" in out
