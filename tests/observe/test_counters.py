"""Counter registry semantics: folds, stages, merges."""

import json

import numpy as np
import pytest

from repro.observe import CounterRegistry


class TestAdd:
    def test_accumulates_total_count_max(self):
        c = CounterRegistry()
        c.add("x", 3.0)
        c.add("x", 5.0)
        c.add("x")  # default value=1
        assert c.value("x") == 9.0
        assert c.count("x") == 3
        assert c.maximum("x") == 5.0
        assert c.mean("x") == pytest.approx(3.0)

    def test_missing_counter_reads_zero(self):
        c = CounterRegistry()
        assert c.value("nope") == 0.0
        assert c.count("nope") == 0
        assert "nope" not in c


class TestObserve:
    def test_array_fold(self):
        c = CounterRegistry()
        c.observe("g", np.array([1.0, 2.0, 4.0]))
        assert c.value("g") == 7.0
        assert c.count("g") == 3
        assert c.maximum("g") == 4.0

    def test_nonfinite_split_out(self):
        c = CounterRegistry()
        c.observe("g", np.array([1.0, np.inf, 2.0, np.nan]))
        assert c.value("g") == 3.0
        assert c.count("g") == 2
        assert c.value("g.nonfinite") == 2.0


class TestStages:
    def test_stage_scoping_nests(self):
        c = CounterRegistry()
        with c.stage("outer"):
            c.add("n", 1)
            with c.stage("inner"):
                c.add("n", 10)
        c.add("n", 100)
        assert c.value("n") == 111.0
        stages = c.stages()
        # Adds credit the innermost active stage only.
        assert stages["outer"]["n"] == 1.0
        assert stages["inner"]["n"] == 10.0


class TestMerge:
    def test_merge_with_prefix(self):
        a, b = CounterRegistry(), CounterRegistry()
        b.add("sync.count", 4)
        b.add("sync.count", 2)
        a.merge(b, prefix="block0.")
        assert a.value("block0.sync.count") == 6.0
        assert a.count("block0.sync.count") == 2

    def test_snapshot_roundtrip_fields(self):
        c = CounterRegistry()
        c.add("x", 2.5)
        snap = c.snapshot()
        assert snap["x"] == {"total": 2.5, "count": 1, "max": 2.5}


class TestSnapshotJsonStrict:
    def test_unobserved_maximum_snapshots_as_none(self):
        # add_aggregate without a maximum leaves the stat's peak at its
        # -inf sentinel; the snapshot must emit None, not -Infinity,
        # because strict-JSON consumers reject the latter.
        c = CounterRegistry()
        c.add_aggregate("flops.groups", total=128.0, events=4)
        snap = c.snapshot()["flops.groups"]
        assert snap == {"total": 128.0, "count": 4, "max": None}
        json.dumps(snap, allow_nan=False)  # must not raise

    def test_aggregate_with_maximum_keeps_it(self):
        c = CounterRegistry()
        c.add_aggregate("growth", total=6.0, events=2, maximum=4.0)
        assert c.snapshot()["growth"]["max"] == 4.0

    def test_later_add_recovers_a_finite_maximum(self):
        c = CounterRegistry()
        c.add_aggregate("x", total=1.0)
        c.add("x", 3.0)
        assert c.snapshot()["x"]["max"] == 3.0
