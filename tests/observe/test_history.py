"""Run-history JSONL store: durable appends and drift detection."""

import json
import math

import pytest

from repro.observe.history import (
    HISTORY_SCHEMA,
    RunHistory,
    detect_drift,
    gauge_direction,
    record_gauges,
    run_record,
)


def summary(wall=0.5, gflops=100.0):
    return {
        "problems": 2048, "chunks": 4, "workers": 2, "mode": "process",
        "wall_s": wall,
        "groups": [{"op": "lu", "problems": 2048, "gflops": gflops}],
    }


def records_for(walls, gflops=None):
    return [
        run_record(summary(
            wall=wall, gflops=100.0 if gflops is None else gflops[i]
        ))
        for i, wall in enumerate(walls)
    ]


class TestRunHistory:
    def test_append_stamps_and_load_round_trips(self, tmp_path):
        history = RunHistory(tmp_path / "history.jsonl")
        path = history.append({"summary": summary(), "device": "Quadro 6000"})
        assert path == history.path
        (record,) = history.load()
        assert record["schema"] == HISTORY_SCHEMA
        assert record["ts"] > 0
        assert record["device"] == "Quadro 6000"
        assert record["summary"]["problems"] == 2048

    def test_appends_accumulate_across_instances(self, tmp_path):
        path = tmp_path / "history.jsonl"
        RunHistory(path).append({"run": 1})
        RunHistory(path).append({"run": 2})
        history = RunHistory(path)
        assert len(history) == 2
        assert [r["run"] for r in history.load()] == [1, 2]

    def test_load_limit_keeps_newest(self, tmp_path):
        history = RunHistory(tmp_path / "history.jsonl")
        for i in range(5):
            history.append({"run": i})
        assert [r["run"] for r in history.load(limit=2)] == [3, 4]

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        history = RunHistory(path)
        history.append({"run": "good"})
        with path.open("a") as fh:
            fh.write("{ torn lin\n")
            fh.write("\n")
            fh.write('"not a dict"\n')
            fh.write(json.dumps({"schema": HISTORY_SCHEMA + 1, "run": "new"}) + "\n")
        history.append({"run": "also good"})
        assert [r["run"] for r in history.load()] == ["good", "also good"]

    def test_missing_file_loads_empty(self, tmp_path):
        assert RunHistory(tmp_path / "absent.jsonl").load() == []

    def test_clear_removes_file(self, tmp_path):
        history = RunHistory(tmp_path / "history.jsonl")
        history.append({"run": 0})
        history.clear()
        assert not history.path.exists()
        history.clear()  # idempotent on a missing file

    def test_nonfinite_values_stored_as_null(self, tmp_path):
        history = RunHistory(tmp_path / "history.jsonl")
        history.append({"gflops": math.nan, "wall_s": 0.5})
        (record,) = history.load()
        assert record["gflops"] is None
        assert record["wall_s"] == 0.5


class TestRunRecord:
    def test_embeds_regimes_and_attribution(self):
        class FakeClassification:
            def to_dict(self):
                return {"label": "lu", "regime": "latency-bound"}

        record = run_record(
            summary(),
            regimes=[FakeClassification(), {"label": "qr", "regime": "compute-bound"}],
            attribution=[{"label": "lu", "residual_total": 12.0}],
            device="G80",
        )
        assert record["device"] == "G80"
        assert record["regimes"][0] == {"label": "lu", "regime": "latency-bound"}
        assert record["regimes"][1]["regime"] == "compute-bound"
        assert record["attribution"][0]["residual_total"] == 12.0

    def test_empty_sections_omitted(self):
        record = run_record(summary())
        assert "regimes" not in record
        assert "attribution" not in record


class TestRecordGauges:
    def test_flattens_and_keys_lists_by_identity(self):
        gauges = record_gauges({
            "schema": HISTORY_SCHEMA,
            "ts": 123.0,
            "summary": summary(wall=0.25),
            "regimes": [{"regime": "latency-bound", "measured_cycles": 10.0}],
            "identical": True,
        })
        assert gauges["summary.wall_s"] == 0.25
        assert gauges["summary.groups.lu.gflops"] == 100.0
        assert gauges["regimes.latency-bound.measured_cycles"] == 10.0
        assert "ts" not in gauges and "schema" not in gauges
        assert "identical" not in gauges  # bools are not gauges

    def test_lists_without_identity_use_index(self):
        gauges = record_gauges({"walls": [0.1, 0.2]})
        assert gauges == {"walls.0": 0.1, "walls.1": 0.2}

    def test_nonfinite_leaves_skipped(self):
        assert record_gauges({"x": math.inf, "y": 1.0}) == {"y": 1.0}


class TestGaugeDirection:
    @pytest.mark.parametrize("name", [
        "summary.wall_s", "chunk.queue_wait", "attribution.lu.residual_total",
        "reconstruction_err", "cache.misses", "trace.dropped",
    ])
    def test_lower_is_better(self, name):
        assert gauge_direction(name) == "lower"

    @pytest.mark.parametrize("name", [
        "summary.groups.lu.gflops", "speedup_vs_serial", "cache.hits",
    ])
    def test_higher_is_better(self, name):
        assert gauge_direction(name) == "higher"


class TestDetectDrift:
    def test_flags_wall_time_regression(self):
        flags = detect_drift(records_for([0.5] * 5 + [0.7]))
        flag = next(f for f in flags if f.gauge == "summary.wall_s")
        assert flag.direction == "lower"
        assert flag.deviation == pytest.approx(0.4)
        assert flag.median == pytest.approx(0.5)
        assert "summary.wall_s" in str(flag)

    def test_flags_throughput_drop(self):
        flags = detect_drift(
            records_for([0.5] * 6, gflops=[100.0] * 5 + [80.0])
        )
        flag = next(
            f for f in flags if f.gauge == "summary.groups.lu.gflops"
        )
        assert flag.direction == "higher"
        assert flag.deviation == pytest.approx(-0.2)

    def test_improvement_is_not_drift(self):
        # Wall time down and throughput up move in their *good*
        # directions: nothing to flag.
        flags = detect_drift(
            records_for([0.5] * 5 + [0.3], gflops=[100.0] * 5 + [150.0])
        )
        assert flags == []

    def test_within_tolerance_is_quiet(self):
        assert detect_drift(records_for([0.5] * 5 + [0.52])) == []

    def test_needs_min_history(self):
        assert detect_drift(records_for([0.5, 0.5, 5.0])) == []
        assert detect_drift(records_for([0.5] * 3 + [5.0])) != []

    def test_zero_median_gauges_skipped(self):
        records = records_for([0.5] * 6)
        for r in records[:-1]:
            r["residual"] = 0.0
        records[-1]["residual"] = 5.0
        assert all(f.gauge != "residual" for f in detect_drift(records))

    def test_window_bounds_the_median(self):
        # Old slow runs outside the window must not mask a regression
        # against the recent fast median.
        walls = [5.0] * 10 + [0.5] * 8 + [0.7]
        flags = detect_drift(records_for(walls), window=8)
        flag = next(f for f in flags if f.gauge == "summary.wall_s")
        assert flag.median == pytest.approx(0.5)
        assert flag.window == 8

    def test_sorted_by_deviation_magnitude(self):
        flags = detect_drift(
            records_for([0.5] * 5 + [0.7], gflops=[100.0] * 5 + [10.0])
        )
        assert len(flags) >= 2
        deviations = [abs(f.deviation) for f in flags]
        assert deviations == sorted(deviations, reverse=True)


def profile_records(queue_shares=None, stragglers=None, queues=None, n=6):
    queue_shares = queue_shares or [0.2] * n
    stragglers = stragglers or [1.1] * n
    queues = queues or [0.01] * n
    return [
        run_record(
            summary(),
            profile={
                "phases": {"queue": queues[i], "merge": 0.001},
                "wall_s": 0.5,
                "straggler_index": stragglers[i],
                "queue_share": queue_shares[i],
                "coverage": 0.95,
            },
        )
        for i in range(n)
    ]


class TestProfileDriftPolicy:
    """The profiler gauges are lower-is-better for drift purposes."""

    @pytest.mark.parametrize("name", [
        "profile.queue_share",
        "profile.straggler_index",
        "profile.phases.queue",
        "profile.phases.merge",
    ])
    def test_profile_gauges_lower_is_better(self, name):
        assert gauge_direction(name) == "lower"

    def test_profile_gauges_flatten_from_records(self):
        gauges = record_gauges(profile_records()[0])
        assert gauges["profile.queue_share"] == pytest.approx(0.2)
        assert gauges["profile.straggler_index"] == pytest.approx(1.1)
        assert gauges["profile.phases.queue"] == pytest.approx(0.01)

    def test_queue_share_regression_flags(self):
        flags = detect_drift(profile_records(queue_shares=[0.2] * 5 + [0.5]))
        flag = next(f for f in flags if f.gauge == "profile.queue_share")
        assert flag.direction == "lower"
        assert flag.deviation == pytest.approx(1.5)

    def test_straggler_regression_flags(self):
        flags = detect_drift(profile_records(stragglers=[1.1] * 5 + [2.0]))
        assert any(f.gauge == "profile.straggler_index" for f in flags)

    def test_phase_regression_flags(self):
        flags = detect_drift(profile_records(queues=[0.01] * 5 + [0.05]))
        assert any(f.gauge == "profile.phases.queue" for f in flags)

    def test_improvement_is_quiet(self):
        flags = detect_drift(
            profile_records(
                queue_shares=[0.2] * 5 + [0.05],
                stragglers=[1.5] * 5 + [1.0],
            )
        )
        assert [f for f in flags if f.gauge.startswith("profile.")] == []


class TestCompaction:
    def _filled(self, tmp_path, n=10):
        history = RunHistory(tmp_path / "history.jsonl")
        for i in range(n):
            history.append({"run": i})
        return history

    def test_compact_keeps_newest(self, tmp_path):
        history = self._filled(tmp_path)
        dropped = history.compact(max_records=3)
        assert dropped == 7
        assert [r["run"] for r in history.load()] == [7, 8, 9]

    def test_compacted_store_loads_identically(self, tmp_path):
        # Kept lines are verbatim: schema stamp, ts, every field.
        history = self._filled(tmp_path)
        before = history.load()[-3:]
        history.compact(max_records=3)
        assert history.load() == before

    def test_compact_drops_corrupt_lines(self, tmp_path):
        history = self._filled(tmp_path, n=2)
        with history.path.open("a") as fh:
            fh.write("{ torn lin\n")
            fh.write(json.dumps({"schema": HISTORY_SCHEMA + 1}) + "\n")
        assert history.compact(max_records=10) == 2
        assert [r["run"] for r in history.load()] == [0, 1]

    def test_noop_when_nothing_to_drop(self, tmp_path):
        history = self._filled(tmp_path, n=3)
        stat = history.path.stat()
        assert history.compact(max_records=5) == 0
        # No rewrite happened: same inode contents, untouched mtime.
        assert history.path.stat().st_mtime_ns == stat.st_mtime_ns
        assert [r["run"] for r in history.load()] == [0, 1, 2]

    def test_compact_missing_file_is_zero(self, tmp_path):
        assert RunHistory(tmp_path / "absent.jsonl").compact(5) == 0

    def test_compact_to_zero_empties(self, tmp_path):
        history = self._filled(tmp_path, n=3)
        assert history.compact(max_records=0) == 3
        assert history.load() == []
        history.append({"run": "fresh"})  # store still usable
        assert len(history) == 1

    def test_negative_max_records_raises(self, tmp_path):
        history = self._filled(tmp_path, n=1)
        with pytest.raises(ValueError):
            history.compact(max_records=-1)

    def test_size_cap_rotates_on_append(self, tmp_path):
        history = RunHistory(
            tmp_path / "history.jsonl", max_records=4, max_bytes=512
        )
        for i in range(50):
            history.append({"run": i, "pad": "x" * 40})
        records = history.load()
        assert len(records) <= 4
        assert records[-1]["run"] == 49

    def test_size_cap_without_max_records_keeps_newest_half(self, tmp_path):
        history = RunHistory(tmp_path / "history.jsonl", max_bytes=2048)
        for i in range(60):
            history.append({"run": i, "pad": "x" * 40})
        records = history.load()
        assert 0 < len(records) < 60
        assert records[-1]["run"] == 59
        runs = [r["run"] for r in records]
        assert runs == sorted(runs)  # oldest dropped, order preserved

    def test_rotation_disabled_with_none(self, tmp_path):
        history = RunHistory(tmp_path / "history.jsonl", max_bytes=None)
        for i in range(30):
            history.append({"run": i, "pad": "x" * 40})
        assert len(history) == 30

    def test_compaction_counts_in_metrics(self, tmp_path):
        from repro.observe.metrics import (
            MetricsRegistry,
            set_default_registry,
            set_metrics_enabled,
        )

        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        previous_flag = set_metrics_enabled(True)
        try:
            history = self._filled(tmp_path, n=5)
            history.compact(max_records=2)
            history.compact(max_records=2)  # no-op: not counted
            assert (
                registry.sum_series("repro_history_compactions_total") == 1
            )
        finally:
            set_default_registry(previous)
            set_metrics_enabled(previous_flag)
