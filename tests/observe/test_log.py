"""Structured logging: schema, span correlation, gating, durability."""

import json
import math
import threading

import pytest

from repro.observe import log as obslog
from repro.observe.log import (
    LOG_SCHEMA,
    StructuredLogger,
    current_span,
    read_log,
    span_context,
)


@pytest.fixture
def sink(tmp_path):
    return tmp_path / "events.jsonl"


@pytest.fixture
def enabled(sink):
    """Logging forced on into a tmp sink, restored afterwards."""
    previous_flag = obslog.set_log_enabled(True)
    previous_sink = obslog.set_default_logger(StructuredLogger(sink))
    yield sink
    obslog.set_log_enabled(previous_flag)
    obslog.set_default_logger(previous_sink)


class TestStructuredLogger:
    def test_record_schema(self, sink):
        StructuredLogger(sink).log("runtime.launch", chunks=4, mode="process")
        (record,) = read_log(sink)
        assert record["schema"] == LOG_SCHEMA
        assert record["event"] == "runtime.launch"
        assert record["level"] == "info"
        assert record["ts"] > 0
        assert record["pid"] > 0
        assert record["span_id"] is None
        assert record["parent_id"] is None
        assert record["fields"] == {"chunks": 4, "mode": "process"}

    def test_records_append_in_order(self, sink):
        logger = StructuredLogger(sink)
        for i in range(5):
            logger.log("tick", i=i)
        assert [r["fields"]["i"] for r in read_log(sink)] == list(range(5))

    def test_unknown_level_raises(self, sink):
        with pytest.raises(ValueError):
            StructuredLogger(sink).log("x", level="fatal")

    def test_explicit_span_ids_win(self, sink):
        logger = StructuredLogger(sink)
        with span_context("batch:0"):
            logger.log("x", span_id="batch:9/chunk:1", parent_id="batch:9")
        (record,) = read_log(sink)
        assert record["span_id"] == "batch:9/chunk:1"
        assert record["parent_id"] == "batch:9"

    def test_nonfinite_and_exotic_fields_clamped(self, sink):
        StructuredLogger(sink).log(
            "x", wall=math.inf, path=object(), nested={"v": math.nan}
        )
        (record,) = read_log(sink)
        assert record["fields"]["wall"] is None
        assert record["fields"]["nested"]["v"] is None
        assert isinstance(record["fields"]["path"], str)

    def test_sink_failure_is_swallowed(self, tmp_path):
        # The sink path is a directory: every write fails, none raise.
        StructuredLogger(tmp_path).log("x")

    def test_concurrent_writers_interleave_whole_lines(self, sink):
        logger = StructuredLogger(sink)

        def hammer(tag):
            for i in range(50):
                logger.log("tick", tag=tag, i=i)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = read_log(sink)
        assert len(records) == 200
        for tag in range(4):
            seen = [r["fields"]["i"] for r in records if r["fields"]["tag"] == tag]
            assert seen == list(range(50))


class TestReadLog:
    def test_skips_torn_and_foreign_lines(self, sink):
        StructuredLogger(sink).log("good")
        with sink.open("a") as fh:
            fh.write('{"schema": 1, "event": "torn...\n')
            fh.write("\n")
            fh.write('"not a dict"\n')
            fh.write(json.dumps({"schema": LOG_SCHEMA + 1, "event": "new"}) + "\n")
        StructuredLogger(sink).log("also good")
        assert [r["event"] for r in read_log(sink)] == ["good", "also good"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_log(tmp_path / "absent.jsonl") == []


class TestSpanContext:
    def test_default_is_no_span(self):
        assert current_span() == (None, None)

    def test_context_stamps_records(self, sink):
        logger = StructuredLogger(sink)
        with span_context("batch:0"):
            logger.log("planned")
        (record,) = read_log(sink)
        assert record["span_id"] == "batch:0"
        assert record["parent_id"] is None

    def test_nested_contexts_chain_parents(self):
        with span_context("batch:0"):
            with span_context("batch:0/chunk:1"):
                assert current_span() == ("batch:0/chunk:1", "batch:0")
            assert current_span() == ("batch:0", None)
        assert current_span() == (None, None)

    def test_context_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with span_context("batch:0"):
                raise RuntimeError("boom")
        assert current_span() == (None, None)

    def test_stack_is_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_span()

        with span_context("batch:0"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["other"] == (None, None)


class TestGating:
    def test_disabled_log_event_writes_nothing(self, sink):
        previous_flag = obslog.set_log_enabled(False)
        previous_sink = obslog.set_default_logger(StructuredLogger(sink))
        try:
            obslog.log_event("x", chunks=4)
        finally:
            obslog.set_log_enabled(previous_flag)
            obslog.set_default_logger(previous_sink)
        assert not sink.exists()

    def test_enabled_log_event_writes(self, enabled):
        obslog.log_event("x", chunks=4)
        (record,) = read_log(enabled)
        assert record["fields"]["chunks"] == 4

    def test_set_log_enabled_returns_previous(self):
        previous = obslog.set_log_enabled(True)
        assert obslog.set_log_enabled(previous) is True

    @pytest.mark.parametrize("raw", ["", "0", "false", "No", "OFF"])
    def test_env_falsey_disables(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", raw)
        assert obslog._env_sink() is None

    @pytest.mark.parametrize("raw", ["1", "true", "YES", "on"])
    def test_env_truthy_uses_default_path(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", raw)
        assert obslog._env_sink() == obslog.default_log_path()

    def test_env_path_becomes_sink(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LOG", str(tmp_path / "my.jsonl"))
        assert obslog._env_sink() == tmp_path / "my.jsonl"
