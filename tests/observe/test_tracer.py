"""Tracer core: span nesting, activation, ring buffer, no-op helpers."""

import threading

import pytest

from repro.observe import (
    Tracer,
    add_counter,
    current_tracer,
    instant,
    set_tracer,
    span,
    tracing,
)


class TestActivation:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_tracing_installs_and_removes(self):
        with tracing() as tracer:
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert current_tracer() is None

    def test_tracing_accepts_existing_tracer(self):
        mine = Tracer(capacity=32)
        with tracing(mine) as tracer:
            assert tracer is mine

    def test_set_tracer_returns_previous(self):
        t1 = Tracer()
        prev = set_tracer(t1)
        try:
            assert prev is None
            assert current_tracer() is t1
        finally:
            set_tracer(prev)
        assert current_tracer() is None

    def test_activation_is_thread_local(self):
        seen = {}

        def worker():
            seen["inner"] = current_tracer()

        with tracing():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["inner"] is None


class TestSpans:
    def test_span_nesting_depth_and_parent(self):
        tracer = Tracer()
        assert tracer.depth == 0
        with tracer.span("outer", "test"):
            assert tracer.depth == 1
            outer = tracer.current_span
            with tracer.span("inner", "test"):
                assert tracer.depth == 2
                assert tracer.current_span is not outer
            assert tracer.depth == 1
            assert tracer.current_span is outer
        assert tracer.depth == 0
        assert tracer.current_span is None

    def test_span_emits_complete_event_on_exit(self):
        tracer = Tracer()
        with tracer.span("work", "test", detail=7):
            pass
        events = list(tracer.events)
        assert len(events) == 1
        ev = events[0]
        assert ev.name == "work"
        assert ev.ph == "X"
        assert ev.args["detail"] == 7

    def test_nested_span_events_close_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer", "test"):
            with tracer.span("inner", "test"):
                pass
        names = [e.name for e in tracer.events]
        assert names == ["inner", "outer"]

    def test_span_scopes_counter_stage(self):
        tracer = Tracer()
        with tracer.span("stage_a", "test"):
            tracer.counters.add("hits", 2)
        tracer.counters.add("hits", 1)
        assert tracer.counters.value("hits") == 3
        assert tracer.counters.stages()["stage_a"]["hits"] == 2


class TestDisabledTracer:
    """With no tracer installed the module helpers must be inert."""

    def test_helpers_add_no_events(self):
        probe = Tracer()
        with span("ignored", "test"):
            instant("ignored", "test")
            add_counter("ignored.counter", 5)
        assert current_tracer() is None
        assert len(probe.events) == 0

    def test_engine_runs_clean_without_tracer(self):
        import numpy as np

        from repro.kernels.batched import random_batch
        from repro.kernels.device import per_block_lu

        result = per_block_lu(random_batch(2, 8, 8, dtype=np.float32, seed=0))
        # Per-launch counters still accumulate (always-on registry) ...
        assert result.launch.counters.value("sync.count") > 0
        # ... but nothing leaked into a global tracer.
        assert current_tracer() is None


class TestRingBuffer:
    def test_capacity_caps_memory(self):
        tracer = Tracer(capacity=8)
        for i in range(100):
            tracer.instant(f"e{i}", "test")
        assert len(tracer.events) == 8
        assert tracer.dropped == 92
        # Oldest events are the ones evicted.
        assert [e.name for e in tracer.events] == [f"e{i}" for i in range(92, 100)]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear_resets_events_and_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", "test")
        tracer.clear()
        assert len(tracer.events) == 0
        assert tracer.dropped == 0


class TestIngest:
    """Folding worker events back into a launch tracer."""

    def _worker_trace(self):
        src = Tracer()
        with src.span("chunk", "runtime"):
            src.instant("kernel.start", "kernel", depth=1)
        src.instant("chunk.done", "runtime")
        return src

    def test_tags_land_on_every_event(self):
        src = self._worker_trace()
        dst = Tracer()
        count = dst.ingest(src.events, shard=3, worker=123)
        assert count == len(src.events) == len(dst.events)
        for ev in dst.events:
            assert ev.args["shard"] == 3
            assert ev.args["worker"] == 123
        # Original args survive next to the stamps.
        kernel = next(e for e in dst.events if e.name == "kernel.start")
        assert kernel.args["depth"] == 1

    def test_order_preserved_and_restamped_after_existing_events(self):
        src = self._worker_trace()
        dst = Tracer()
        dst.instant("before", "runtime")
        base = list(dst.events)[-1].ts
        dst.ingest(src.events, shard=0)
        names = [e.name for e in dst.events]
        assert names == ["before"] + [e.name for e in src.events]
        ingested = list(dst.events)[1:]
        # Shifted onto this tracer's clock: nothing lands before "before",
        # and the worker's internal timing survives as a constant offset.
        assert all(ev.ts >= base for ev in ingested)
        shifts = {
            ev.ts - src_ev.ts for ev, src_ev in zip(ingested, src.events)
        }
        assert len(shifts) == 1

    def test_clock_stays_monotonic_after_ingest(self):
        dst = Tracer()
        dst.ingest(self._worker_trace().events, shard=0)
        last = list(dst.events)[-1].ts
        dst.instant("after", "runtime")
        assert list(dst.events)[-1].ts > last

    def test_dropped_kwarg_accumulates(self):
        dst = Tracer()
        assert dst.ingest([], dropped=5) == 0
        dst.ingest(self._worker_trace().events, dropped=2, shard=1)
        assert dst.dropped == 7

    def test_no_tags_leaves_args_untouched(self):
        src = Tracer()
        src.instant("bare", "test")
        dst = Tracer()
        dst.ingest(src.events)
        (ev,) = dst.events
        assert ev.args is None or "shard" not in ev.args


class TestTimestamps:
    def test_tick_clock_is_monotonic(self):
        tracer = Tracer()
        tracer.instant("a", "test")
        tracer.instant("b", "test")
        a, b = tracer.events
        assert b.ts > a.ts

    def test_explicit_ts_advances_clock(self):
        tracer = Tracer()
        tracer.complete("charge", "engine", ts=1000.0, dur=50.0)
        tracer.instant("after", "test")
        charge, after = tracer.events
        assert charge.ts == 1000.0 and charge.dur == 50.0
        assert after.ts >= 1050.0


class TestClockAlignedIngest:
    """The clock-origin handshake: worker timelines align, not re-stamp."""

    def test_origin_offset_is_perf_difference(self):
        a = Tracer()
        b = Tracer()
        assert b.origin.offset_from(a.origin) == pytest.approx(
            b.origin.perf - a.origin.perf
        )

    def test_now_advances_in_real_seconds(self):
        tracer = Tracer()
        first = tracer.now()
        second = tracer.now()
        assert 0.0 <= first <= second

    def test_durations_survive_clock_aligned_ingest(self):
        launch = Tracer()
        worker = Tracer()
        worker.complete("attempt", "profile", ts=0.010, dur=0.005, span_id="s")
        launch.ingest(worker.events, clock=worker.origin)
        (ev,) = launch.events
        assert ev.dur == pytest.approx(0.005)

    def test_relative_timing_survives_clock_aligned_ingest(self):
        launch = Tracer()
        worker = Tracer()
        worker.complete("a", "profile", ts=0.001, dur=0.002)
        worker.complete("b", "profile", ts=0.007, dur=0.001)
        launch.ingest(worker.events, clock=worker.origin, shard=3)
        a, b = launch.events
        offset = worker.origin.offset_from(launch.origin)
        assert a.ts == pytest.approx(0.001 + offset)
        assert b.ts - a.ts == pytest.approx(0.006)
        assert a.args["shard"] == 3

    def test_two_workers_keep_cross_process_order(self):
        launch = Tracer()
        early = Tracer()
        late = Tracer()
        early.complete("x", "profile", ts=0.001, dur=0.001)
        late.complete("y", "profile", ts=0.001, dur=0.001)
        # Ingest in the opposite order they "ran"; alignment must land
        # each span at its true instant regardless of fold order.
        launch.ingest(late.events, clock=late.origin)
        launch.ingest(early.events, clock=early.origin)
        y, x = launch.events
        assert (x.ts <= y.ts) == (
            early.origin.perf + 0.001 <= late.origin.perf + 0.001
        )

    def test_clock_none_keeps_restamp_behavior(self):
        launch = Tracer()
        launch.instant("before", "runtime")
        worker = Tracer()
        worker.complete("a", "profile", ts=0.001, dur=0.002)
        launch.ingest(worker.events, clock=None)
        before, a = launch.events
        assert a.ts >= before.ts
