"""Model-vs-measured attribution and launch counter consistency.

The acceptance bar: a traced per-block QR launch must produce an
attribution report whose per-term measured cycles sum to the launch's
:class:`~repro.gpu.clock.CycleBreakdown` total within one cycle, with a
per-term residual against the Eq. 2 prediction.
"""

import numpy as np
import pytest

from repro.kernels.batched import random_batch
from repro.kernels.device import per_block_lu, per_block_qr
from repro.microbench import calibrate
from repro.model import predict_per_block
from repro.observe import attribute_launch, format_attribution, tracing


@pytest.fixture(scope="module")
def params():
    return calibrate()


class TestQrAttribution:
    @pytest.fixture(scope="class")
    def traced_qr(self):
        with tracing():
            result = per_block_qr(random_batch(2, 56, 56, dtype=np.float32, seed=1))
        return result

    def test_measured_terms_sum_to_breakdown_total(self, params, traced_qr):
        launch = traced_qr.launch
        report = attribute_launch(params, launch, label="qr56")
        assert report.measured_total == pytest.approx(
            launch.breakdown.total, abs=1.0
        )

    def test_every_breakdown_category_is_attributed(self, params, traced_qr):
        report = attribute_launch(params, traced_qr.launch)
        covered = {t.category for t in report.terms}
        assert set(traced_qr.launch.breakdown) <= covered

    def test_residuals_tell_the_figure8_story(self, params, traced_qr):
        report = attribute_launch(params, traced_qr.launch)
        # Overhead is measured-only: the analytic model predicts zero.
        overhead = report.term("overhead")
        assert overhead.eq_cycles == 0.0
        assert overhead.measured_cycles > 0.0
        assert overhead.residual > 0.0
        # The DRAM term's Eq. 2 fair-share overestimates the engine's
        # overlap-discounted charge (Table V's 0.59 factor).
        dram = report.term("msize*beta_glb")
        assert dram.residual < 0.0
        # Compute/shared cycles are charged exactly as Eq. 2 prices them.
        assert report.term("flops*gamma").residual == pytest.approx(0.0, abs=1.0)
        assert report.term("#msg*alpha_sh").residual == pytest.approx(0.0, abs=1.0)

    def test_prediction_column(self, params, traced_qr):
        prediction = predict_per_block(params, "qr", 56)
        report = attribute_launch(
            params, traced_qr.launch, prediction=prediction
        )
        assert report.model_total is not None
        assert report.model_total > 0.0
        for term in report.terms:
            if term.model_cycles is not None:
                assert term.model_residual is not None

    def test_format_and_to_dict(self, params, traced_qr):
        report = attribute_launch(params, traced_qr.launch, label="qr56")
        text = format_attribution(report)
        assert "qr56" in text and "TOTAL" in text
        d = report.to_dict()
        assert d["label"] == "qr56"
        assert len(d["terms"]) == len(report.terms)

    def test_untraced_launch_has_counters_too(self, params):
        # The engine's registry is always on; attribution does not
        # require an active tracer.
        result = per_block_qr(random_batch(1, 16, 16, dtype=np.float32, seed=0))
        report = attribute_launch(params, result.launch)
        assert report.measured_total == pytest.approx(
            result.launch.breakdown.total, abs=1.0
        )


class TestLuCounterConsistency:
    """Per-block LU counters must be self-consistent with the clock."""

    @pytest.fixture(scope="class")
    def lu16(self):
        with tracing():
            result = per_block_lu(random_batch(2, 16, 16, dtype=np.float32, seed=0))
        return result

    def test_sync_count_matches_algorithm(self, lu16):
        # Unpivoted per-block LU on n=16: three barriers per elimination
        # step.
        assert lu16.launch.counters.value("sync.count") == 3 * (16 - 1)

    def test_shared_transactions_at_least_syncs(self, lu16):
        c = lu16.launch.counters
        assert c.value("shared.transactions") >= c.value("sync.count")

    def test_clock_total_equals_breakdown_sum(self, lu16):
        launch = lu16.launch
        assert launch.cycles == pytest.approx(launch.breakdown.total, abs=1e-6)

    def test_counters_ride_launch_result(self, lu16):
        c = lu16.launch.counters
        assert c.value("flops.groups") > 0
        assert c.value("overhead.events") > 0
        assert lu16.launch.threads > 0


class TestTracedEqualsUntraced:
    """Tracing must never perturb the simulated cost accounting."""

    def test_identical_cycle_counts(self):
        batch = random_batch(1, 24, 24, dtype=np.float32, seed=3)
        plain = per_block_qr(batch)
        with tracing():
            traced = per_block_qr(batch)
        assert traced.launch.cycles == plain.launch.cycles
        assert dict(traced.launch.breakdown) == dict(plain.launch.breakdown)
