"""Roofline regime classification from Eq. 1/Eq. 2 term shares."""

import numpy as np
import pytest

from repro.kernels.batched import random_batch
from repro.kernels.device import per_block_lu
from repro.microbench import calibrate
from repro.observe.attribution import (
    AttributionReport,
    TermAttribution,
    attribute_launch,
)
from repro.observe.metrics import (
    MetricsRegistry,
    set_default_registry,
    set_metrics_enabled,
)
from repro.observe.regime import (
    REGIMES,
    TERM_REGIME,
    classify_regime,
    record_regime,
)


def make_report(cycles: dict, label="launch") -> AttributionReport:
    """A synthetic report where each term measured ``cycles[term]``."""
    terms = tuple(
        TermAttribution(
            term=term, category=term, count=1.0,
            eq_cycles=value, measured_cycles=value,
        )
        for term, value in cycles.items()
    )
    return AttributionReport(label=label, threads=64, terms=terms)


class TestClassify:
    @pytest.mark.parametrize("term,regime", sorted(TERM_REGIME.items()))
    def test_dominant_term_names_the_regime(self, term, regime):
        cycles = {t: 1.0 for t in TERM_REGIME}
        cycles[term] = 100.0
        c = classify_regime(make_report(cycles))
        assert c.regime == regime
        assert c.dominant_term == term

    def test_shares_sum_to_one(self):
        c = classify_regime(
            make_report({"flops*gamma": 60.0, "msize*beta_glb": 40.0})
        )
        assert sum(c.shares.values()) == pytest.approx(1.0)
        assert set(c.shares) == set(REGIMES)
        assert c.shares["compute-bound"] == pytest.approx(0.6)
        assert c.measured_cycles == pytest.approx(100.0)

    def test_latency_regime_pools_shared_and_overhead(self):
        # Neither shared traffic nor overhead dominates alone, but their
        # pooled regime beats compute -- and the dominant *term* is still
        # the single largest one.
        c = classify_regime(make_report(
            {"#msg*alpha_sh": 30.0, "overhead": 30.0, "flops*gamma": 40.0}
        ))
        assert c.regime == "latency-bound"
        assert c.shares["latency-bound"] == pytest.approx(0.6)
        assert c.dominant_term == "flops*gamma"

    def test_negative_cycles_clamped(self):
        c = classify_regime(make_report(
            {"flops*gamma": -50.0, "nsync*alpha_sync": 10.0}
        ))
        assert c.regime == "sync-bound"
        assert c.shares["compute-bound"] == 0.0

    def test_all_zero_degrades_to_latency_bound(self):
        c = classify_regime(make_report({t: 0.0 for t in TERM_REGIME}))
        assert c.regime == "latency-bound"
        assert c.dominant_term == "overhead"
        assert c.measured_cycles == 0.0
        assert all(share == 0.0 for share in c.shares.values())

    def test_ties_break_in_regimes_order(self):
        c = classify_regime(make_report(
            {"flops*gamma": 50.0, "nsync*alpha_sync": 50.0}
        ))
        assert c.regime == "compute-bound"  # first in REGIMES

    def test_to_dict_is_flat(self):
        c = classify_regime(make_report({"flops*gamma": 1.0}, label="qr56"))
        doc = c.to_dict()
        assert doc["label"] == "qr56"
        assert doc["regime"] == "compute-bound"
        assert doc["dominant_term"] == "flops*gamma"
        assert set(doc["shares"]) == set(REGIMES)

    def test_classifies_real_launch(self):
        params = calibrate()
        result = per_block_lu(random_batch(4, 16, 16, dtype=np.float32, seed=0))
        c = classify_regime(
            attribute_launch(params, result.launch, label="lu16")
        )
        assert c.label == "lu16"
        assert c.regime in REGIMES
        assert sum(c.shares.values()) == pytest.approx(1.0)
        assert c.measured_cycles > 0


class TestRecord:
    def test_explicit_registry_gets_gauges_and_counter(self):
        registry = MetricsRegistry()
        c = classify_regime(make_report({"flops*gamma": 10.0}))
        record_regime(c, registry=registry, op="qr")
        for regime in REGIMES:
            assert registry.value(
                "repro_regime_share", default=-1.0, regime=regime, op="qr"
            ) == pytest.approx(c.shares[regime])
        assert registry.value(
            "repro_launch_regime_total", regime="compute-bound", op="qr"
        ) == 1.0

    def test_default_registry_honors_enable_flag(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        previous_flag = set_metrics_enabled(False)
        try:
            c = classify_regime(make_report({"flops*gamma": 10.0}))
            record_regime(c)
            assert len(registry) == 0
            set_metrics_enabled(True)
            record_regime(c)
            assert "repro_launch_regime_total" in registry
        finally:
            set_default_registry(previous)
            set_metrics_enabled(previous_flag)

    def test_explicit_registry_records_even_when_disabled(self):
        registry = MetricsRegistry()
        previous_flag = set_metrics_enabled(False)
        try:
            c = classify_regime(make_report({"nsync*alpha_sync": 5.0}))
            record_regime(c, registry=registry)
            assert registry.value(
                "repro_launch_regime_total", regime="sync-bound"
            ) == 1.0
        finally:
            set_metrics_enabled(previous_flag)
