"""Span trees, critical path, decomposition, flamegraph, flow arrows."""

import pytest

from repro.observe.profile import (
    PHASES,
    PROFILE_CATEGORY,
    ProfileEmitter,
    build_span_trees,
    collapsed_stacks,
    compute_profile,
    critical_path,
    flow_events,
    profiling_enabled,
    set_profiling_enabled,
)
from repro.observe.tracer import Event, Tracer


def _span(name, ts, dur, span_id, parent_id=None, **args):
    payload = dict(args)
    payload["span_id"] = span_id
    if parent_id is not None:
        payload["parent_id"] = parent_id
    return Event(
        name=name, category=PROFILE_CATEGORY, ph="X", ts=ts, dur=dur, args=payload
    )


def _batch_events():
    """A hand-built two-chunk batch: chunk 1 is the straggler."""
    return [
        _span("batch", 0.0, 1.0, "b", problems=8, chunks=2),
        _span("plan", 0.0, 0.1, "b/plan", "b"),
        _span("execute", 0.1, 0.8, "b/execute", "b"),
        _span("chunk", 0.1, 0.4, "b/chunk:0", "b/execute", chunk=0),
        _span("submit", 0.1, 0.02, "b/chunk:0/submit:0", "b/chunk:0", chunk=0),
        _span(
            "attempt",
            0.15,
            0.3,
            "b/chunk:0/attempt:0",
            "b/chunk:0",
            chunk=0,
            worker=11,
        ),
        _span("chunk", 0.12, 0.78, "b/chunk:1", "b/execute", chunk=1),
        _span("submit", 0.12, 0.03, "b/chunk:1/submit:0", "b/chunk:1", chunk=1),
        _span(
            "attempt",
            0.2,
            0.6,
            "b/chunk:1/attempt:0",
            "b/chunk:1",
            chunk=1,
            worker=12,
        ),
        _span("merge", 0.9, 0.1, "b/merge", "b"),
    ]


class TestToggle:
    def test_default_enabled(self):
        assert profiling_enabled()

    def test_toggle_round_trip(self):
        previous = set_profiling_enabled(False)
        try:
            assert previous is True
            assert not profiling_enabled()
        finally:
            set_profiling_enabled(previous)
        assert profiling_enabled()


class TestEmitter:
    def test_emit_records_span_with_edges(self):
        tracer = Tracer()
        emitter = ProfileEmitter(tracer, "batch:7")
        emitter.emit(
            "plan",
            0.1,
            0.3,
            span_id=emitter.span_id("plan"),
            parent_id=emitter.scope,
            chunks=4,
        )
        (ev,) = tracer.events
        assert ev.category == PROFILE_CATEGORY
        assert ev.args["span_id"] == "batch:7/plan"
        assert ev.args["parent_id"] == "batch:7"
        assert ev.dur == pytest.approx(0.2)

    def test_negative_width_clamps_to_zero(self):
        tracer = Tracer()
        emitter = ProfileEmitter(tracer, "b")
        emitter.emit("x", 0.5, 0.4, span_id="b/x", parent_id="b")
        assert tracer.events[0].dur == 0.0

    def test_at_converts_perf_stamps(self):
        tracer = Tracer()
        emitter = ProfileEmitter(tracer, "b")
        assert emitter.at(tracer.origin.perf) == pytest.approx(0.0)
        assert emitter.at(tracer.origin.perf + 1.5) == pytest.approx(1.5)


class TestTreeBuilding:
    def test_builds_single_rooted_tree(self):
        (root,) = build_span_trees(_batch_events())
        assert root.name == "batch"
        names = sorted(c.name for c in root.children)
        assert names == ["execute", "merge", "plan"]
        execute = root.find("execute")
        assert [c.args["chunk"] for c in execute.children] == [0, 1]

    def test_scope_filter_excludes_other_batches(self):
        events = _batch_events() + [_span("batch", 5.0, 1.0, "other")]
        roots = build_span_trees(events, scope="b")
        assert [r.span_id for r in roots] == ["b"]

    def test_orphans_become_roots(self):
        events = [_span("chunk", 0.0, 1.0, "b/chunk:0", "b/execute", chunk=0)]
        (root,) = build_span_trees(events)
        assert root.name == "chunk"

    def test_non_profile_events_ignored(self):
        events = _batch_events() + [
            Event(name="charge", category="engine", ph="X", ts=0.0, dur=1.0)
        ]
        assert len(build_span_trees(events)) == 1

    def test_children_sorted_by_start(self):
        (root,) = build_span_trees(_batch_events())
        starts = [c.start for c in root.children]
        assert starts == sorted(starts)

    def test_signature_erases_timing(self):
        (a,) = build_span_trees(_batch_events())
        shifted = [
            _span(e.name, e.ts + 3.0, e.dur * 2, e.args["span_id"],
                  e.args.get("parent_id"), **{
                      k: v for k, v in e.args.items()
                      if k not in ("span_id", "parent_id")
                  })
            for e in _batch_events()
        ]
        (b,) = build_span_trees(shifted)
        assert a.signature() == b.signature()


class TestCriticalPath:
    def test_path_follows_straggler_chunk(self):
        (root,) = build_span_trees(_batch_events())
        steps = critical_path(root)
        assert [s.name for s in steps] == [
            "plan", "submit", "queue", "attempt", "transfer", "merge",
        ]
        attempt = next(s for s in steps if s.name == "attempt")
        assert "chunk:1" in attempt.span_id  # the straggler, not chunk 0

    def test_queue_gap_is_submit_end_to_attempt_start(self):
        (root,) = build_span_trees(_batch_events())
        queue = next(s for s in critical_path(root) if s.name == "queue")
        assert queue.start == pytest.approx(0.15)
        assert queue.dur == pytest.approx(0.05)

    def test_generic_fallback_descends_last_finisher(self):
        events = [
            _span("outer", 0.0, 1.0, "o"),
            _span("fast", 0.0, 0.2, "o/fast", "o"),
            _span("slow", 0.1, 0.8, "o/slow", "o"),
        ]
        (root,) = build_span_trees(events)
        steps = critical_path(root)
        assert [s.name for s in steps] == ["outer", "slow"]


class TestDecomposition:
    def test_phases_partition_the_wall(self):
        (root,) = build_span_trees(_batch_events())
        profile = compute_profile(root)
        assert set(profile.phases) == set(PHASES)
        assert sum(profile.phases.values()) == pytest.approx(profile.wall_s)

    def test_phase_values_match_tree(self):
        # Sweep over the execute window [0.1, 0.9]: submits gate
        # [0.1, 0.15], chunk attempts cover [0.15, 0.8] (chunk 1's long
        # attempt absorbs chunk 0's transfer gap), and chunk 1's result
        # transfer gates [0.8, 0.9].
        (root,) = build_span_trees(_batch_events())
        p = compute_profile(root).phases
        assert p["plan"] == pytest.approx(0.1)
        assert p["serialize"] == pytest.approx(0.05)  # both submits
        assert p["queue"] == pytest.approx(0.0)  # overlapped by attempts
        assert p["compute"] == pytest.approx(0.65)
        assert p["transfer"] == pytest.approx(0.1)
        assert p["merge"] == pytest.approx(0.1)
        assert p["other"] == pytest.approx(0.0)

    def test_uncovered_queue_gap_counts_as_queue(self):
        # A lone chunk whose attempt starts late: the submitted-but-idle
        # gap [0.12, 0.3] is queue time, the post-attempt tail
        # [0.5, 0.6] is transfer, and execute slack [0.6, 0.7] is other.
        events = [
            _span("batch", 0.0, 1.0, "b"),
            _span("plan", 0.0, 0.1, "b/plan", "b"),
            _span("execute", 0.1, 0.6, "b/execute", "b"),
            _span("chunk", 0.1, 0.5, "b/chunk:0", "b/execute", chunk=0),
            _span("submit", 0.1, 0.02, "b/chunk:0/submit:0", "b/chunk:0", chunk=0),
            _span(
                "attempt",
                0.3,
                0.2,
                "b/chunk:0/attempt:0",
                "b/chunk:0",
                chunk=0,
                worker=9,
            ),
            _span("merge", 0.9, 0.1, "b/merge", "b"),
        ]
        (root,) = build_span_trees(events)
        p = compute_profile(root).phases
        assert p["serialize"] == pytest.approx(0.02)
        assert p["queue"] == pytest.approx(0.18)
        assert p["compute"] == pytest.approx(0.2)
        assert p["transfer"] == pytest.approx(0.1)
        assert sum(p.values()) == pytest.approx(1.0)

    def test_straggler_index_is_max_over_median(self):
        (root,) = build_span_trees(_batch_events())
        profile = compute_profile(root)
        # walls: {0: 0.3, 1: 0.6}; median 0.45 -> 0.6 / 0.45
        assert profile.straggler_index == pytest.approx(0.6 / 0.45)

    def test_worker_busy_and_utilization(self):
        (root,) = build_span_trees(_batch_events())
        profile = compute_profile(root)
        assert profile.worker_busy_s == {11: pytest.approx(0.3), 12: pytest.approx(0.6)}
        assert profile.utilization[12] == pytest.approx(0.6 / 0.8)

    def test_queue_share(self):
        (root,) = build_span_trees(_batch_events())
        profile = compute_profile(root)
        queued = 0.03 + 0.05  # chunk0: 0.15-0.12? no: per-chunk gaps
        # chunk0: attempt.start 0.15 - submit end 0.12 = 0.03
        # chunk1: attempt.start 0.20 - submit end 0.15 = 0.05
        assert profile.queue_share == pytest.approx(queued / (queued + 0.9))

    def test_to_dict_round_trips_to_json(self):
        import json

        (root,) = build_span_trees(_batch_events())
        doc = json.loads(json.dumps(compute_profile(root).to_dict()))
        assert doc["scope"] == "b"
        assert set(doc["phases"]) == set(PHASES)
        assert len(doc["critical_path"]) == 6

    def test_summary_is_compact(self):
        (root,) = build_span_trees(_batch_events())
        summary = compute_profile(root).summary()
        assert set(summary) == {
            "phases", "wall_s", "straggler_index", "queue_share", "coverage",
        }


class TestFlamegraph:
    def test_collapsed_stacks_self_time(self):
        roots = build_span_trees(_batch_events())
        text = collapsed_stacks(roots)
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        # plan has no children: self time = 0.1s = 100000us.
        assert lines["batch;plan"] == "100000"
        # batch self = 1.0 - (0.1 + 0.8 + 0.1) = 0.
        assert lines["batch"] == "0"
        assert "batch;execute;chunk;attempt" in lines

    def test_empty_input_empty_output(self):
        assert collapsed_stacks([]) == ""


class TestFlowEvents:
    def test_arrows_link_submit_attempt_completion(self):
        arrows = flow_events(_batch_events())
        # Two chunks, three records each.
        assert len(arrows) == 6
        phases = [a["ph"] for a in arrows]
        assert phases.count("s") == 2 and phases.count("t") == 2
        step = next(a for a in arrows if a["ph"] == "t" and a["tid"] == 12)
        assert step["ts"] == pytest.approx(0.2)

    def test_chunks_without_attempts_skipped(self):
        events = [
            _span("batch", 0.0, 1.0, "b"),
            _span("execute", 0.0, 1.0, "b/execute", "b"),
            _span("chunk", 0.0, 0.5, "b/chunk:0", "b/execute", chunk=0),
        ]
        assert flow_events(events) == []
