"""Chrome-trace and metrics exporters."""

import json

import numpy as np
import pytest

from repro.kernels.batched import random_batch
from repro.kernels.device import per_block_lu
from repro.observe import (
    Tracer,
    chrome_trace,
    metrics_record,
    read_metrics,
    tracing,
    write_chrome_trace,
    write_metrics,
)


class TestChromeTrace:
    def test_round_trips_json_with_valid_fields(self, tmp_path):
        with tracing() as tracer:
            per_block_lu(random_batch(1, 8, 8, dtype=np.float32, seed=0))
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)

        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) > 1
        for ev in events:
            assert ev["ph"] in ("X", "i", "C", "M")
            if ev["ph"] == "X":
                assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
            elif ev["ph"] == "i":
                assert "ts" in ev and ev["s"] == "t"

    def test_metadata_and_counters_present(self):
        tracer = Tracer()
        tracer.instant("mark", "test")
        tracer.counters.add("sync.count", 4)
        doc = chrome_trace(tracer, process_name="unit")
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "unit"
        assert doc["otherData"]["counters"]["sync.count"] == 4.0
        assert doc["otherData"]["dropped_events"] == 0

    def test_event_args_are_jsonable(self):
        tracer = Tracer()
        tracer.instant(
            "np", "test",
            f32=np.float32(1.5), i64=np.int64(7), bad=float("nan"),
        )
        doc = chrome_trace(tracer)
        args = [e for e in doc["traceEvents"] if e["ph"] == "i"][0]["args"]
        json.dumps(args)  # must not raise
        assert args["f32"] == 1.5
        assert args["i64"] == 7
        assert args["bad"] is None

    def test_every_nonfinite_flavor_exports_as_null(self):
        tracer = Tracer()
        tracer.instant(
            "edges", "test",
            pos=float("inf"), neg=float("-inf"), nan=float("nan"), ok=2.0,
        )
        doc = chrome_trace(tracer)
        args = [e for e in doc["traceEvents"] if e["ph"] == "i"][0]["args"]
        json.dumps(args, allow_nan=False)  # strict JSON must not raise
        assert args["pos"] is None and args["neg"] is None
        assert args["nan"] is None
        assert args["ok"] == 2.0

    def test_aggregate_only_counters_are_strict_json(self, tmp_path):
        # add_aggregate without a maximum leaves -inf in the stat; the
        # trace document must still serialize under allow_nan=False.
        tracer = Tracer()
        tracer.instant("mark", "test")
        tracer.counters.add_aggregate("flops.groups", total=64.0, events=2)
        doc = chrome_trace(tracer)
        json.dumps(doc, allow_nan=False)
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        json.loads(path.read_text())


class TestMetrics:
    def test_write_appends_to_json_array(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(path, metrics_record("run1", {"gflops": 100.0}))
        write_metrics(path, metrics_record("run2", {"gflops": 120.0}, tag="x"))
        records = json.loads(path.read_text())
        assert [r["name"] for r in records] == ["run1", "run2"]
        assert records[1]["tag"] == "x"
        assert records[1]["metrics"]["gflops"] == 120.0

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_metrics(tmp_path / "absent.json") == []

    def test_read_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "an array"}')
        with pytest.raises(ValueError):
            read_metrics(path)

    def test_record_can_embed_tracer_counters(self):
        tracer = Tracer()
        tracer.counters.add("sync.count", 9)
        record = metrics_record("r", {"x": 1.0}, tracer=tracer)
        assert record["counters"]["sync.count"] == 9.0
