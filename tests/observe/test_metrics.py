"""Fleet metrics registry: semantics, merge parity, exposition."""

import math
from pathlib import Path

import pytest

from repro.observe.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    counter_inc,
    gauge_set,
    histogram_observe,
    load_metrics_snapshot,
    parse_prometheus_text,
    prometheus_text,
    set_default_registry,
    set_metrics_enabled,
    write_metrics_snapshot,
    write_prometheus,
)

GOLDEN = Path(__file__).parent / "golden_metrics.prom"


def golden_registry() -> MetricsRegistry:
    """The registry state pinned byte-for-byte by ``golden_metrics.prom``."""
    reg = MetricsRegistry()
    reg.inc(
        "repro_cache_requests_total", 3, help="Cache lookups by outcome.",
        cache="dispatch", outcome="hit",
    )
    reg.inc("repro_cache_requests_total", 1, cache="dispatch", outcome="miss")
    reg.inc("repro_cache_requests_total", 2, cache="calibration", outcome="hit")
    reg.set("repro_runtime_workers", 4, help="Configured pool size.")
    reg.set("repro_regime_share", 0.625, regime="compute-bound", op="qr")
    for value in (0.25, 0.75, 2.5):
        reg.observe(
            "repro_chunk_wall_seconds", value, help="Chunk wall time.",
            buckets=(0.5, 1.0), op="lu",
        )
    return reg


@pytest.fixture
def fresh_default():
    """A clean process-default registry with metrics forced on."""
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    previous_flag = set_metrics_enabled(True)
    yield registry
    set_default_registry(previous)
    set_metrics_enabled(previous_flag)


class TestCounter:
    def test_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("requests", 2, op="lu")
        reg.inc("requests", 3, op="lu")
        reg.inc("requests", op="qr")
        assert reg.value("requests", op="lu") == 5.0
        assert reg.value("requests", op="qr") == 1.0
        assert reg.value("requests", op="cholesky") == 0.0

    def test_negative_increment_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.inc("requests", -1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError, match="is a counter"):
            reg.set("x", 1.0)
        with pytest.raises(ValueError, match="is a counter"):
            reg.observe("x", 1.0)

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().inc("bad name")


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set("workers", 2)
        reg.set("workers", 4)
        assert reg.value("workers") == 4.0

    def test_nonfinite_value_ignored(self):
        reg = MetricsRegistry()
        reg.set("gflops", 100.0)
        reg.set("gflops", math.nan)
        reg.set("gflops", math.inf)
        assert reg.value("gflops") == 100.0


class TestHistogram:
    def test_bucket_placement_and_totals(self):
        reg = MetricsRegistry()
        for v in (0.25, 0.5, 0.75, 2.5):
            reg.observe("wall", v, buckets=(0.5, 1.0))
        hist = reg.histogram_value("wall")
        assert hist.counts == [2, 1, 1]  # le=0.5 inclusive, then le=1, +Inf
        assert hist.cumulative() == [2, 3]
        assert hist.count == 4
        assert hist.total == pytest.approx(4.0)

    def test_default_buckets_used_when_unspecified(self):
        reg = MetricsRegistry()
        reg.observe("wall", 0.1)
        assert reg.histogram_value("wall").buckets == DEFAULT_BUCKETS

    def test_fixed_buckets_enforced(self):
        reg = MetricsRegistry()
        reg.observe("wall", 0.1, buckets=(0.5, 1.0))
        with pytest.raises(ValueError, match="fixed buckets"):
            reg.observe("wall", 0.1, buckets=(0.25, 1.0))

    def test_non_increasing_buckets_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="increasing"):
            reg.observe("wall", 0.1, buckets=(1.0, 0.5))

    def test_nonfinite_observation_ignored(self):
        reg = MetricsRegistry()
        reg.observe("wall", math.nan, buckets=(1.0,))
        reg.observe("wall", 0.5, buckets=(1.0,))
        assert reg.histogram_value("wall").count == 1


class TestMerge:
    def test_worker_fold_matches_sequential_recording(self):
        # The runtime folds per-worker registries in submission order;
        # the result must be indistinguishable from recording everything
        # in one registry -- checked through the byte-stable exposition.
        sequential = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(3)]
        for i, worker in enumerate(workers):
            for reg in (sequential, worker):
                reg.inc("chunks_total", 1, op="lu")
                reg.inc("problems_total", 10 * (i + 1), op="lu")
                reg.observe("wall", 0.1 * (i + 1), buckets=(0.15, 0.25))
                reg.set("workers", i)
        launch = MetricsRegistry()
        for worker in workers:
            launch.merge(worker)
        assert prometheus_text(launch) == prometheus_text(sequential)

    def test_merge_into_empty_copies_everything(self):
        launch = MetricsRegistry()
        launch.merge(golden_registry())
        assert prometheus_text(launch) == prometheus_text(golden_registry())

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("wall", 0.1, buckets=(0.5,))
        b.observe("wall", 0.1, buckets=(1.0,))
        with pytest.raises(ValueError, match="fixed buckets"):
            a.merge(b)


class TestReading:
    def test_sum_series_matches_label_subset(self):
        reg = golden_registry()
        assert reg.sum_series("repro_cache_requests_total", cache="dispatch") == 4.0
        assert reg.sum_series("repro_cache_requests_total", outcome="hit") == 5.0
        assert reg.sum_series("repro_cache_requests_total") == 6.0
        assert reg.sum_series("absent") == 0.0

    def test_label_values_sorted_distinct(self):
        reg = golden_registry()
        assert reg.label_values("repro_cache_requests_total", "cache") == [
            "calibration", "dispatch",
        ]
        assert reg.label_values("repro_cache_requests_total", "nope") == []
        assert reg.label_values("absent", "cache") == []

    def test_kind_contains_len(self):
        reg = golden_registry()
        assert reg.kind("repro_cache_requests_total") == "counter"
        assert reg.kind("repro_runtime_workers") == "gauge"
        assert reg.kind("repro_chunk_wall_seconds") == "histogram"
        assert reg.kind("absent") is None
        assert "repro_runtime_workers" in reg
        assert len(reg) == 4


class TestSnapshot:
    def test_round_trip_preserves_exposition(self):
        reg = golden_registry()
        rebuilt = MetricsRegistry.from_snapshot(reg.snapshot())
        assert prometheus_text(rebuilt) == prometheus_text(reg)

    def test_write_and_load_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_snapshot(golden_registry(), path)
        loaded = load_metrics_snapshot(path)
        assert prometheus_text(loaded) == prometheus_text(golden_registry())

    def test_write_and_load_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(golden_registry(), path)
        loaded = load_metrics_snapshot(path)
        assert prometheus_text(loaded) == prometheus_text(golden_registry())

    def test_load_missing_or_corrupt_is_none(self, tmp_path):
        assert load_metrics_snapshot(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{ truncated")
        assert load_metrics_snapshot(bad) is None

    def test_load_wrong_schema_is_none(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text('{"schema": 999, "families": {}}')
        assert load_metrics_snapshot(path) is None


class TestExposition:
    def test_matches_golden_file(self):
        assert prometheus_text(golden_registry()) == GOLDEN.read_text()

    def test_parse_round_trips_byte_exact(self):
        text = prometheus_text(golden_registry())
        assert prometheus_text(parse_prometheus_text(text)) == text

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("odd_labels", 1, device='Quadro "6000"\\v2', note="two\nlines")
        text = prometheus_text(reg)
        assert prometheus_text(parse_prometheus_text(text)) == text

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_text("# TYPE x counter\nx{oops 1\n")

    def test_sample_without_type_raises(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus_text("mystery_metric 1\n")


class TestDefaultRegistry:
    def test_helpers_record_when_enabled(self, fresh_default):
        counter_inc("c_total", 2, op="lu")
        gauge_set("g", 7.0)
        histogram_observe("h", 0.5, buckets=(1.0,))
        assert fresh_default.value("c_total", op="lu") == 2.0
        assert fresh_default.value("g") == 7.0
        assert fresh_default.histogram_value("h").count == 1

    def test_helpers_noop_when_disabled(self, fresh_default):
        set_metrics_enabled(False)
        counter_inc("c_total")
        gauge_set("g", 1.0)
        histogram_observe("h", 0.5)
        assert len(fresh_default) == 0

    def test_set_default_registry_swaps_and_returns(self, fresh_default):
        other = MetricsRegistry()
        previous = set_default_registry(other)
        try:
            assert previous is fresh_default
            counter_inc("c_total")
            assert other.value("c_total") == 1.0
            assert fresh_default.value("c_total") == 0.0
        finally:
            set_default_registry(previous)

    def test_set_metrics_enabled_returns_previous(self, fresh_default):
        assert set_metrics_enabled(False) is True
        assert set_metrics_enabled(True) is False


class TestHistogramQuantile:
    """Bucket-interpolated quantiles against known distributions."""

    def _uniform_registry(self):
        # 100 observations spread uniformly over (0, 1]: with the
        # default buckets this fills each bucket proportionally.
        registry = MetricsRegistry()
        for i in range(100):
            registry.observe("h", (i + 0.5) / 100.0, op="lu")
        return registry

    def test_median_of_uniform_0_1(self):
        registry = self._uniform_registry()
        median = registry.histogram_quantile("h", 0.5, op="lu")
        # True median is 0.5, which is also a bucket bound.
        assert median == pytest.approx(0.5, abs=0.02)

    def test_p95_and_p99_of_uniform_0_1(self):
        registry = self._uniform_registry()
        assert registry.histogram_quantile("h", 0.95, op="lu") == pytest.approx(
            0.95, abs=0.03
        )
        assert registry.histogram_quantile("h", 0.99, op="lu") == pytest.approx(
            0.99, abs=0.03
        )

    def test_extremes(self):
        registry = self._uniform_registry()
        assert registry.histogram_quantile("h", 0.0, op="lu") == pytest.approx(
            0.0, abs=0.011
        )
        assert registry.histogram_quantile("h", 1.0, op="lu") == pytest.approx(
            1.0, abs=0.01
        )

    def test_point_mass_interpolates_within_its_bucket(self):
        registry = MetricsRegistry()
        for _ in range(10):
            registry.observe("h", 0.03)  # all in the (0.025, 0.05] bucket
        # Uniform-within-bucket assumption: quantiles interpolate the
        # bucket span linearly.
        assert registry.histogram_quantile("h", 0.5) == pytest.approx(0.0375)
        assert registry.histogram_quantile("h", 1.0) == pytest.approx(0.05)

    def test_first_bucket_lower_bound_is_zero(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.0005)
        registry.observe("h", 0.0007)
        q = registry.histogram_quantile("h", 0.5)
        assert 0.0 <= q <= DEFAULT_BUCKETS[0]

    def test_overflow_bucket_clamps_to_highest_bound(self):
        registry = MetricsRegistry()
        registry.observe("h", 99.0)
        assert registry.histogram_quantile("h", 0.5) == DEFAULT_BUCKETS[-1]

    def test_absent_series_returns_none(self):
        registry = MetricsRegistry()
        assert registry.histogram_quantile("h", 0.5) is None
        registry.observe("h", 0.1, op="lu")
        assert registry.histogram_quantile("h", 0.5, op="qr") is None

    def test_invalid_q_raises(self):
        registry = self._uniform_registry()
        with pytest.raises(ValueError):
            registry.histogram_quantile("h", 1.5, op="lu")

    def test_quantiles_survive_merge(self):
        a = self._uniform_registry()
        b = self._uniform_registry()
        a.merge(b)
        # Doubling every bucket count leaves the distribution unchanged.
        assert a.histogram_quantile("h", 0.95, op="lu") == pytest.approx(
            0.95, abs=0.03
        )

    def test_monotone_in_q(self):
        registry = self._uniform_registry()
        values = [
            registry.histogram_quantile("h", q, op="lu")
            for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
        ]
        assert values == sorted(values)


class TestQuantileEdgeCases:
    """Degenerate histograms: empty, overflow-only, and the q bounds."""

    def test_empty_histogram_value_is_none_for_any_q(self):
        from repro.observe.metrics import HistogramValue

        hist = HistogramValue.empty(DEFAULT_BUCKETS)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) is None

    def test_all_mass_in_overflow_clamps_every_q(self):
        # With every observation past the last finite bound there is
        # nothing to interpolate toward: any quantile reports the
        # highest finite bound, including both extremes.
        registry = MetricsRegistry()
        for _ in range(5):
            registry.observe("h", DEFAULT_BUCKETS[-1] * 10)
        for q in (0.0, 0.25, 1.0):
            assert registry.histogram_quantile("h", q) == DEFAULT_BUCKETS[-1]

    def test_q0_is_bucket_lower_bound(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.03)  # lone observation in (0.025, 0.05]
        assert registry.histogram_quantile("h", 0.0) == pytest.approx(0.025)

    def test_q1_is_bucket_upper_bound(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.03)
        assert registry.histogram_quantile("h", 1.0) == pytest.approx(0.05)

    def test_single_observation_median(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.03)
        # rank = 0.5 of one observation interpolates mid-bucket.
        assert registry.histogram_quantile("h", 0.5) == pytest.approx(0.0375)


class TestLabelEscaping:
    """Exposition-format label escaping survives a write/parse cycle."""

    def test_known_escapes(self):
        from repro.observe.metrics import _escape_label, _unescape_label

        assert _escape_label('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        assert _unescape_label('a\\\\b\\"c\\nd') == 'a\\b"c\nd'

    def test_escape_round_trips_hostile_values(self):
        from hypothesis import given
        from hypothesis import strategies as st

        from repro.observe.metrics import _escape_label, _unescape_label

        hostile = st.text(
            alphabet=st.sampled_from(list('\\"\n') + list("abc123 _-")),
            max_size=40,
        )

        @given(hostile)
        def round_trips(value):
            assert _unescape_label(_escape_label(value)) == value
            # The escaped form never contains a raw newline or quote,
            # so the exposition line stays parseable.
            escaped = _escape_label(value)
            assert "\n" not in escaped

        round_trips()

    def test_escaped_labels_survive_exposition_parse(self):
        registry = MetricsRegistry()
        registry.inc("requests", 2, op='lu\\qr "quoted"\nline')
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert parsed.sum_series("requests", op='lu\\qr "quoted"\nline') == 2


class TestMergedHistogram:
    def test_merges_matching_series_exactly(self):
        registry = MetricsRegistry()
        for value in (0.25, 0.75):
            registry.observe("h", value, buckets=(0.5, 1.0), op="lu")
        registry.observe("h", 0.25, buckets=(0.5, 1.0), op="qr")
        merged = registry.merged_histogram("h")
        assert merged is not None
        assert merged.count == 3
        assert merged.total == pytest.approx(1.25)
        narrowed = registry.merged_histogram("h", op="lu")
        assert narrowed.count == 2

    def test_absent_or_wrong_kind_is_none(self):
        registry = MetricsRegistry()
        assert registry.merged_histogram("h") is None
        registry.inc("requests", 1, op="lu")
        assert registry.merged_histogram("requests") is None
        registry.observe("h", 0.1, op="lu")
        assert registry.merged_histogram("h", op="qr") is None

    def test_merge_does_not_mutate_sources(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.25, buckets=(0.5, 1.0), op="lu")
        registry.observe("h", 0.75, buckets=(0.5, 1.0), op="qr")
        before = registry.histogram_value("h", op="lu").count
        registry.merged_histogram("h")
        assert registry.histogram_value("h", op="lu").count == before
