"""Timeline CLI: trace round trip, budgets, strict gating, artifacts."""

import json

import numpy as np
import pytest

from repro.observe import tracing, write_chrome_trace
from repro.observe.profile import PROFILE_CATEGORY, build_span_trees
from repro.observe.timeline import (
    DEFAULT_BUDGETS,
    check_budgets,
    load_profile_events,
    main,
    render_timeline,
)
from repro.runtime.executor import BatchRuntime
from repro.runtime.sharding import ProblemBatch


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """A real traced pooled run's Chrome trace, written once.

    Mirrors the CI quickstart shape (multi-worker pool), where the merge
    amortizes across chunks and the default phase budgets hold.  Machine
    load can inflate one run's merge share past its budget, so the run
    retries a few times and the first budget-clean trace wins (the last
    attempt is kept regardless so failures stay debuggable).
    """
    from repro.observe.profile import compute_profile

    rng = np.random.default_rng(7)
    mats = rng.standard_normal((128, 8, 8))
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    for _ in range(5):
        runtime = BatchRuntime(
            workers=2, chunk_cost=8 * 8 * 8 * 4, use_caches=False, history=False
        )
        with tracing() as tracer:
            report = runtime.run(ProblemBatch.single("lu", mats))
        assert report.profile is not None
        write_chrome_trace(tracer, path)
        roots = build_span_trees(load_profile_events(path))
        batch = next(r for r in roots if r.name == "batch")
        if not check_budgets(compute_profile(batch), DEFAULT_BUDGETS):
            break
    return path


class TestLoadProfileEvents:
    def test_round_trip_preserves_span_tree(self, trace_path):
        events = load_profile_events(trace_path)
        assert events and all(e.category == PROFILE_CATEGORY for e in events)
        roots = build_span_trees(events)
        batch = next(r for r in roots if r.name == "batch")
        assert batch.find("execute") is not None
        assert batch.find("attempt") is not None

    def test_timestamps_back_in_seconds(self, trace_path):
        events = load_profile_events(trace_path)
        batch = max(events, key=lambda e: e.dur)
        # A tiny serial batch runs in well under a minute.
        assert 0.0 < batch.dur < 60.0

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_profile_events(tmp_path / "absent.json")


class TestBudgets:
    def test_default_budget_caps_merge(self):
        assert DEFAULT_BUDGETS == {"merge": 0.10}

    def test_check_budgets_flags_overrun(self, trace_path):
        events = load_profile_events(trace_path)
        from repro.observe.profile import compute_profile

        root = next(
            r for r in build_span_trees(events) if r.name == "batch"
        )
        profile = compute_profile(root)
        assert check_budgets(profile, {"compute": 1.0}) == []
        violations = check_budgets(profile, {"compute": 1e-9})
        assert violations and "compute" in violations[0]


class TestCli:
    def test_renders_and_passes_strict(self, trace_path, capsys):
        assert main([str(trace_path), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "Latency decomposition" in out
        assert "Critical path" in out
        assert "Stragglers" in out
        assert "Chunk wall quantiles" in out
        assert "budgets satisfied" in out

    def test_budget_violation_exits_1_under_strict(self, trace_path, capsys):
        code = main([str(trace_path), "--strict", "--budget", "compute=0.000001"])
        assert code == 1
        assert "budget violation" in capsys.readouterr().out

    def test_violation_without_strict_exits_0(self, trace_path, capsys):
        assert main([str(trace_path), "--budget", "compute=0.000001"]) == 0

    def test_unknown_phase_budget_rejected(self, trace_path, capsys):
        with pytest.raises(SystemExit):
            main([str(trace_path), "--budget", "blend=0.5"])

    def test_json_artifact(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "timeline.json"
        assert main([str(trace_path), "--json", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["violations"] == []
        (batch,) = doc["batches"]
        assert batch["scope"].startswith("batch:")
        assert sum(batch["phases"].values()) == pytest.approx(
            batch["wall_s"], rel=1e-6
        )

    def test_flamegraph_artifact(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "flame.collapsed"
        assert main([str(trace_path), "--flamegraph", str(out_path)]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert any(line.startswith("batch;execute;chunk") for line in lines)
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) >= 0

    def test_unreadable_trace_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.json")]) == 2

    def test_truncated_trace_degrades(self, tmp_path, capsys):
        # Only an orphaned chunk span survived the ring buffer: the CLI
        # must warn and pass, not crash or fail the gate.
        doc = {
            "traceEvents": [
                {
                    "name": "chunk",
                    "cat": "profile",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": 1000.0,
                    "args": {
                        "span_id": "batch:0/chunk:0",
                        "parent_id": "batch:0/execute",
                        "chunk": 0,
                    },
                }
            ]
        }
        path = tmp_path / "truncated.json"
        path.write_text(json.dumps(doc))
        assert main([str(path), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "warning" in out and "no batch span tree" in out


class TestRenderTimeline:
    def test_reports_each_batch_root(self, trace_path):
        events = load_profile_events(trace_path)
        text, profiles = render_timeline(build_span_trees(events))
        assert len(profiles) == 1
        assert profiles[0].chunk_walls
