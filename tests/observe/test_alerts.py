"""SLO/alert engine: spec validation, evaluation, transitions, CLI.

Ends with the acceptance scenario: a seeded fault-injection run whose
quarantined problems fire the failure-rate burn alert, with every alert
event and log record joining the run's trace tree on a span id.
"""

import json
import sys

import pytest

from repro.observe import alerts as alerts_mod
from repro.observe.alerts import (
    AlertSpecError,
    alert_spec_from_dict,
    compile_plan,
    evaluate,
    load_alert_spec,
    load_alert_state,
    write_alert_state,
)
from repro.observe.history import HISTORY_SCHEMA, RunHistory
from repro.observe.metrics import MetricsRegistry, write_metrics_snapshot


def spec_doc(rules=None):
    return {
        "slo": {"name": "test", "title": "Test SLOs"},
        "rule": rules
        or [
            {
                "name": "failures-max",
                "kind": "threshold",
                "metric": "repro_problem_failures_total",
                "max": 0,
            }
        ],
    }


def burn_rule(**over):
    rule = {
        "name": "failure-burn",
        "kind": "burn_rate",
        "severity": "page",
        "numerator": "summary.failures",
        "denominator": "summary.problems",
        "objective": 0.999,
        "long_window": 24,
        "short_window": 4,
        "factor": 2.0,
    }
    rule.update(over)
    return rule


def history_records(failures, problems=1000, wall=0.5):
    return [
        {
            "schema": HISTORY_SCHEMA,
            "ts": float(i),
            "span_id": f"batch:{i}",
            "summary": {"failures": f, "problems": problems, "wall_s": wall},
        }
        for i, f in enumerate(failures)
    ]


class TestSpecValidation:
    def test_minimal_spec_parses(self):
        spec = alert_spec_from_dict(spec_doc())
        assert spec.name == "test"
        (rule,) = spec.rules
        assert rule.kind == "threshold"
        assert rule.severity == "ticket"  # default

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.pop("slo"), "slo"),
            (lambda d: d.pop("rule"), "rule"),
            (lambda d: d.update(rule=[]), "rule"),
            (lambda d: d.update(extra=1), "unknown key"),
            (lambda d: d["slo"].update(owner="x"), "unknown key"),
        ],
    )
    def test_structural_errors(self, mutate, match):
        doc = spec_doc()
        mutate(doc)
        with pytest.raises(AlertSpecError, match=match):
            alert_spec_from_dict(doc)

    @pytest.mark.parametrize(
        "rule, match",
        [
            ({"name": "x", "kind": "pager"}, "unknown kind"),
            ({"kind": "threshold", "metric": "m", "max": 1}, "name"),
            ({"name": "x", "kind": "threshold", "metric": "m"}, "exactly one"),
            (
                {"name": "x", "kind": "threshold", "metric": "m", "max": 1, "min": 0},
                "exactly one",
            ),
            ({"name": "x", "kind": "threshold", "max": 1}, "metric"),
            (
                {"name": "x", "kind": "threshold", "metric": "m", "max": 1,
                 "severity": "sev1"},
                "severity",
            ),
            (
                {"name": "x", "kind": "threshold", "metric": "m", "max": 1,
                 "window": 4},
                "unknown key",
            ),
            (
                {"name": "x", "kind": "threshold", "metric": "m", "max": 1,
                 "quantile": 1.5},
                "quantile",
            ),
            ({"name": "x", "kind": "delta", "gauge": "g", "window": 0}, "window"),
            (
                {"name": "x", "kind": "delta", "gauge": "g", "direction": "up"},
                "direction",
            ),
            (burn_rule(objective=1.0), "objective"),
            (burn_rule(short_window=30), "short_window"),
            (burn_rule(numerator=None), "numerator"),
        ],
    )
    def test_rule_errors(self, rule, match):
        with pytest.raises(AlertSpecError, match=match):
            alert_spec_from_dict(spec_doc([rule]))

    def test_duplicate_rule_names_rejected(self):
        doc = spec_doc()
        doc["rule"] = doc["rule"] * 2
        with pytest.raises(AlertSpecError, match="duplicate"):
            alert_spec_from_dict(doc)


class TestPlanFingerprint:
    def test_deterministic_and_key_order_invariant(self):
        a = compile_plan(alert_spec_from_dict(spec_doc()))
        reordered = {
            "rule": spec_doc()["rule"],
            "slo": {"title": "Test SLOs", "name": "test"},
        }
        b = compile_plan(alert_spec_from_dict(reordered))
        assert a.fingerprint == b.fingerprint
        assert len(a.fingerprint) == 64

    def test_semantic_edit_changes_fingerprint(self):
        base = compile_plan(alert_spec_from_dict(spec_doc()))
        doc = spec_doc()
        doc["rule"][0]["max"] = 5
        assert compile_plan(alert_spec_from_dict(doc)).fingerprint != base.fingerprint
        doc = spec_doc()
        doc["rule"][0]["severity"] = "page"
        assert compile_plan(alert_spec_from_dict(doc)).fingerprint != base.fingerprint

    def test_json_and_toml_files_agree(self, tmp_path):
        if sys.version_info < (3, 11):
            pytest.skip("TOML specs need Python 3.11+ (stdlib tomllib)")
        json_path = tmp_path / "slo.json"
        json_path.write_text(json.dumps(spec_doc()))
        toml_path = tmp_path / "slo.toml"
        toml_path.write_text(
            '[slo]\nname = "test"\ntitle = "Test SLOs"\n\n'
            "[[rule]]\n"
            'name = "failures-max"\nkind = "threshold"\n'
            'metric = "repro_problem_failures_total"\nmax = 0\n'
        )
        assert (
            compile_plan(load_alert_spec(json_path)).fingerprint
            == compile_plan(load_alert_spec(toml_path)).fingerprint
        )

    @pytest.mark.parametrize(
        "name, body, match",
        [
            ("slo.json", "{ torn", "invalid JSON"),
            ("slo.yaml", "slo:\n", ".toml or .json"),
            ("absent.json", None, "cannot read"),
        ],
    )
    def test_load_errors(self, tmp_path, name, body, match):
        path = tmp_path / name
        if body is not None:
            path.write_text(body)
        with pytest.raises(AlertSpecError, match=match):
            load_alert_spec(path)

    def test_toml_gated_below_311(self, tmp_path):
        if sys.version_info >= (3, 11):
            pytest.skip("gate only reachable without stdlib tomllib")
        path = tmp_path / "slo.toml"
        path.write_text('[slo]\nname = "x"\n')
        with pytest.raises(AlertSpecError, match="3.11"):
            load_alert_spec(path)


class TestThresholdEval:
    def _plan(self, **over):
        rule = {
            "name": "r",
            "kind": "threshold",
            "metric": "repro_problem_failures_total",
            "max": 0,
        }
        rule.update(over)
        return compile_plan(alert_spec_from_dict(spec_doc([rule])))

    def test_missing_registry_and_family_are_no_data(self):
        (result,) = evaluate(self._plan(), registry=None).results
        assert result.state == "no_data"
        (result,) = evaluate(self._plan(), registry=MetricsRegistry()).results
        assert result.state == "no_data"

    def test_max_bound(self):
        registry = MetricsRegistry()
        registry.inc("repro_problem_failures_total", 0, op="lu")
        (result,) = evaluate(self._plan(), registry).results
        assert result.state == "ok"
        registry.inc("repro_problem_failures_total", 3, op="lu")
        evaluation = evaluate(self._plan(), registry)
        (result,) = evaluation.results
        assert result.state == "firing"
        assert result.value == 3
        assert evaluation.firing == [result]

    def test_min_bound_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("hits", 5, cache="dispatch")
        registry.inc("hits", 1, cache="calibration")
        plan = self._plan(
            metric="hits", min=2, labels={"cache": "dispatch"}, max=None
        )
        (result,) = evaluate(plan, registry).results
        assert result.state == "ok"
        plan = self._plan(
            metric="hits", min=2, labels={"cache": "calibration"}, max=None
        )
        (result,) = evaluate(plan, registry).results
        assert result.state == "firing"

    def test_histogram_quantile_bound(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 9.0):
            registry.observe("wall", value, buckets=(0.5, 1.0, 10.0), op="lu")
        plan = self._plan(metric="wall", quantile=0.5, max=1.0)
        (result,) = evaluate(plan, registry).results
        assert result.state == "ok"
        plan = self._plan(metric="wall", quantile=0.99, max=1.0)
        (result,) = evaluate(plan, registry).results
        assert result.state == "firing"

    def test_histogram_without_quantile_is_no_data(self):
        registry = MetricsRegistry()
        registry.observe("wall", 0.1)
        (result,) = evaluate(self._plan(metric="wall"), registry).results
        assert result.state == "no_data"
        assert "quantile" in result.detail


class TestDeltaEval:
    def _plan(self, **over):
        rule = {
            "name": "wall-drift",
            "kind": "delta",
            "gauge": "summary.wall_s",
            "window": 4,
            "tolerance": 0.25,
            "min_history": 3,
        }
        rule.update(over)
        return compile_plan(alert_spec_from_dict(spec_doc([rule])))

    def test_insufficient_history_is_no_data(self):
        records = history_records([0, 0], wall=0.5)
        (result,) = evaluate(self._plan(), records=records).results
        assert result.state == "no_data"

    def test_regression_fires_improvement_is_quiet(self):
        quiet = history_records([0] * 6, wall=0.5)
        (result,) = evaluate(self._plan(), records=quiet).results
        assert result.state == "ok"
        slow = quiet + history_records([0], wall=1.0)
        (result,) = evaluate(self._plan(), records=slow).results
        assert result.state == "firing"
        assert result.value == pytest.approx(1.0)  # +100% vs median
        fast = quiet + history_records([0], wall=0.1)
        (result,) = evaluate(self._plan(), records=fast).results
        assert result.state == "ok"

    def test_direction_override(self):
        # With "higher is better" forced, a wall-time *drop* fires.
        records = history_records([0] * 6, wall=0.5)
        records += history_records([0], wall=0.1)
        plan = self._plan(direction="higher")
        (result,) = evaluate(plan, records=records).results
        assert result.state == "firing"

    def test_zero_median_is_no_data(self):
        records = history_records([0] * 6, wall=0.0)
        (result,) = evaluate(self._plan(), records=records).results
        assert result.state == "no_data"


class TestBurnEval:
    def _plan(self, **over):
        return compile_plan(alert_spec_from_dict(spec_doc([burn_rule(**over)])))

    def test_no_records_is_no_data(self):
        (result,) = evaluate(self._plan()).results
        assert result.state == "no_data"

    def test_quiet_history_is_ok(self):
        records = history_records([0, 1, 0, 0, 1, 0])
        (result,) = evaluate(self._plan(), records=records).results
        assert result.state == "ok"

    def test_failure_burst_fires_both_windows(self):
        records = history_records([0] * 10 + [50, 60, 50, 40])
        evaluation = evaluate(self._plan(), records=records)
        (result,) = evaluation.results
        assert result.state == "firing"
        assert result.evidence["short_burn"] >= 2.0
        assert result.evidence["long_burn"] >= 2.0

    def test_recovered_burst_does_not_fire(self):
        # Heavy failures long ago, clean short window: the multi-window
        # condition holds the page until the budget is *actively* burning.
        records = history_records([500] * 4 + [0] * 8)
        (result,) = evaluate(self._plan(), records=records).results
        assert result.state == "ok"
        assert result.evidence["long_burn"] >= 2.0
        assert result.evidence["short_burn"] < 2.0

    def test_zero_denominator_is_no_data(self):
        records = history_records([0, 0], problems=0)
        (result,) = evaluate(self._plan(short_window=1, long_window=2),
                             records=records).results
        assert result.state == "no_data"


class TestTransitions:
    def _plan(self):
        return compile_plan(alert_spec_from_dict(spec_doc([burn_rule()])))

    def test_firing_resolved_cycle(self):
        plan = self._plan()
        bad = history_records([0] * 4 + [100] * 4)
        first = evaluate(plan, records=bad)
        (event,) = first.events
        assert event.transition == "firing"
        assert event.severity == "page"
        # Still firing: no repeat event.
        second = evaluate(plan, records=bad, previous=first.states)
        assert second.events == ()
        good = bad + history_records([0] * 24)
        third = evaluate(plan, records=good, previous=second.states)
        (event,) = third.events
        assert event.transition == "resolved"

    def test_no_data_carries_previous_state(self):
        plan = self._plan()
        firing = evaluate(plan, records=history_records([0] * 4 + [100] * 4))
        assert firing.states == {"failure-burn": "firing"}
        # Telemetry vanishes: state carries, and nothing "resolves".
        lost = evaluate(plan, records=[], previous=firing.states)
        (result,) = lost.results
        assert result.state == "no_data"
        assert lost.states == {"failure-burn": "firing"}
        assert lost.events == ()

    def test_event_and_result_carry_latest_span(self):
        plan = self._plan()
        evaluation = evaluate(plan, records=history_records([0] * 4 + [100] * 4))
        (result,) = evaluation.results
        (event,) = evaluation.events
        assert result.span_id == "batch:7"
        assert event.span_id == "batch:7"


class TestStatePersistence:
    def test_round_trip(self, tmp_path):
        plan = compile_plan(alert_spec_from_dict(spec_doc([burn_rule()])))
        evaluation = evaluate(plan, records=history_records([0] * 4 + [100] * 4))
        path = write_alert_state(tmp_path / "alerts.json", evaluation)
        doc = load_alert_state(path)
        assert doc["slo"] == "test"
        assert doc["fingerprint"] == plan.fingerprint
        assert doc["states"] == {"failure-burn": "firing"}
        assert doc["results"][0]["rule"] == "failure-burn"
        assert doc["events"][0]["transition"] == "firing"

    def test_missing_or_corrupt_state_is_none(self, tmp_path):
        assert load_alert_state(tmp_path / "absent.json") is None
        path = tmp_path / "bad.json"
        path.write_text("{ torn")
        assert load_alert_state(path) is None
        path.write_text(json.dumps({"schema": 999}))
        assert load_alert_state(path) is None

    def test_fingerprint_mismatch_discards_previous(self, tmp_path):
        plan = compile_plan(alert_spec_from_dict(spec_doc([burn_rule()])))
        evaluation = evaluate(plan, records=history_records([0] * 4 + [100] * 4))
        path = write_alert_state(tmp_path / "alerts.json", evaluation)
        doc = load_alert_state(path)
        assert alerts_mod._previous_states(doc, plan) == {
            "failure-burn": "firing"
        }
        edited = compile_plan(
            alert_spec_from_dict(spec_doc([burn_rule(factor=5.0)]))
        )
        assert alerts_mod._previous_states(doc, edited) == {}


class TestCli:
    def _write_inputs(self, tmp_path, failures=(0, 0, 0, 0)):
        spec = tmp_path / "slo.json"
        spec.write_text(json.dumps(spec_doc([burn_rule()])))
        history = RunHistory(tmp_path / "history.jsonl", max_bytes=None)
        for record in history_records(list(failures)):
            history.append(record)
        registry = MetricsRegistry()
        registry.inc("repro_runtime_launches_total", len(failures), mode="process")
        metrics = write_metrics_snapshot(registry, tmp_path / "metrics.json")
        return spec, history.path, metrics

    def _check(self, tmp_path, *extra, failures=(0, 0, 0, 0)):
        spec, history, metrics = self._write_inputs(tmp_path, failures)
        return alerts_mod.main(
            [
                "check",
                str(spec),
                "--history",
                str(history),
                "--metrics",
                str(metrics),
                "--state",
                str(tmp_path / "alerts.json"),
                *extra,
            ]
        )

    def test_quiet_check_exits_zero(self, tmp_path, capsys):
        assert self._check(tmp_path, "--strict") == 0
        out = capsys.readouterr().out
        assert "all quiet" in out
        assert "failure-burn" in out

    def test_strict_firing_exits_one(self, tmp_path, capsys):
        assert self._check(tmp_path, "--strict", failures=(0, 100, 100, 100)) == 1
        out = capsys.readouterr().out
        assert "FIRING" in out
        assert "alert firing: failure-burn [page]" in out

    def test_firing_without_strict_exits_zero(self, tmp_path):
        assert self._check(tmp_path, failures=(0, 100, 100, 100)) == 0

    def test_check_persists_state_and_json(self, tmp_path):
        export = tmp_path / "out.json"
        self._check(tmp_path, "--json", str(export))
        for path in (tmp_path / "alerts.json", export):
            doc = load_alert_state(path)
            assert doc is not None
            assert doc["states"] == {"failure-burn": "ok"}

    def test_transition_fires_once_across_checks(self, tmp_path, capsys):
        self._check(tmp_path, failures=(0, 100, 100, 100))
        assert "alert firing" in capsys.readouterr().out
        # Same telemetry, same state file: no new transition.
        spec, history, metrics = self._write_inputs(tmp_path, (0, 100, 100, 100))
        alerts_mod.main(
            ["check", str(spec), "--history", str(history),
             "--metrics", str(metrics), "--state", str(tmp_path / "alerts.json")]
        )
        assert "alert firing" not in capsys.readouterr().out

    def test_spec_error_exits_two(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps(spec_doc([{"name": "x", "kind": "pager"}])))
        assert alerts_mod.main(["check", str(spec)]) == 2
        assert "spec error" in capsys.readouterr().err

    def test_explain_shows_plan(self, tmp_path, capsys):
        spec, history, metrics = self._write_inputs(tmp_path)
        assert (
            alerts_mod.main(
                ["explain", str(spec), "--history", str(history),
                 "--metrics", str(metrics)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "plan fingerprint" in out
        assert "summary.failures/summary.problems" in out

    def test_watch_iterations_and_strict(self, tmp_path, capsys):
        spec, history, metrics = self._write_inputs(tmp_path, (0, 100, 100, 100))
        code = alerts_mod.main(
            ["watch", str(spec), "--history", str(history),
             "--metrics", str(metrics), "--iterations", "2",
             "--interval", "0.01", "--strict"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "firing: failure-burn" in out

    def test_check_mirrors_events_into_log(self, tmp_path):
        from repro.observe import log as obslog
        from repro.observe.log import StructuredLogger, read_log

        sink = tmp_path / "events.jsonl"
        previous_flag = obslog.set_log_enabled(True)
        previous_sink = obslog.set_default_logger(StructuredLogger(sink))
        try:
            self._check(tmp_path, failures=(0, 100, 100, 100))
        finally:
            obslog.set_log_enabled(previous_flag)
            obslog.set_default_logger(previous_sink)
        (record,) = [r for r in read_log(sink) if r["event"] == "alert.firing"]
        assert record["level"] == "error"  # page -> error
        assert record["fields"]["rule"] == "failure-burn"
        assert record["span_id"] == "batch:3"


class TestDefaultSpec:
    """The shipped default SLO spec parses and stays quiet when healthy."""

    def _spec_path(self):
        from pathlib import Path

        return (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "specs"
            / "slo_default.toml"
        )

    def test_compiles_with_expected_rules(self):
        if sys.version_info < (3, 11):
            pytest.skip("TOML specs need Python 3.11+ (stdlib tomllib)")
        plan = compile_plan(load_alert_spec(self._spec_path()))
        names = {rule.name for rule in plan.rules}
        assert names == {
            "chunk-wall-p99",
            "trace-drops",
            "serial-fallback",
            "wall-drift",
            "costcheck-mismatch",
            "failure-burn",
        }
        burn = next(r for r in plan.rules if r.name == "failure-burn")
        assert burn.severity == "page"

    def test_quiet_on_healthy_telemetry(self):
        if sys.version_info < (3, 11):
            pytest.skip("TOML specs need Python 3.11+ (stdlib tomllib)")
        plan = compile_plan(load_alert_spec(self._spec_path()))
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            registry.observe("repro_chunk_wall_seconds", value, op="lu")
        records = history_records([0] * 6)
        evaluation = evaluate(plan, registry, records)
        assert evaluation.firing == []


class TestFaultInjectionAcceptance:
    """Seeded faults + singular victims -> failure-burn pages, spans join."""

    def test_quarantined_run_fires_failure_burn_with_resolvable_spans(
        self, tmp_path
    ):
        from repro.kernels.batched import diagonally_dominant_batch
        from repro.model.flops import lu_flops
        from repro.observe import log as obslog
        from repro.observe import metrics as metrics_mod
        from repro.observe import tracing
        from repro.observe.log import StructuredLogger, read_log
        from repro.observe.profile import build_span_trees
        from repro.resilience import FaultSpec
        from repro.runtime import BatchRuntime, ProblemBatch

        matrices = diagonally_dominant_batch(32, 6, seed=0)
        matrices[3] = 0.0  # planted singular victims -> quarantine
        matrices[20] = 0.0
        history_path = tmp_path / "history.jsonl"
        sink = tmp_path / "events.jsonl"

        registry = metrics_mod.MetricsRegistry()
        previous_registry = metrics_mod.set_default_registry(registry)
        previous_metrics = metrics_mod.set_metrics_enabled(True)
        previous_flag = obslog.set_log_enabled(True)
        previous_sink = obslog.set_default_logger(StructuredLogger(sink))
        try:
            runtime = BatchRuntime(
                use_caches=False,
                workers=2,
                chunk_cost=lu_flops(6) * 8,
                history=history_path,
                faults=FaultSpec(kind="crash", chunks=(0,), count=1),
            )
            with tracing() as tracer:
                report = runtime.run(ProblemBatch.single("lu", matrices))
        finally:
            obslog.set_log_enabled(previous_flag)
            obslog.set_default_logger(previous_sink)
            metrics_mod.set_default_registry(previous_registry)
            metrics_mod.set_metrics_enabled(previous_metrics)

        # The crash was recovered; the singular problems were quarantined.
        assert [f.index for f in report.failures] == [3, 20]
        assert report.profile is not None
        scope = report.profile.scope

        # The history record joins the run by span id.
        (record,) = RunHistory(history_path).load()
        assert record["span_id"] == scope
        assert record["summary"]["failures"] == 2

        # The failure-rate burn alert fires on this run's telemetry.
        plan = compile_plan(alert_spec_from_dict(spec_doc([burn_rule()])))
        evaluation = evaluate(plan, registry, RunHistory(history_path).load())
        (result,) = evaluation.results
        assert result.state == "firing"
        (event,) = evaluation.events
        assert event.transition == "firing"
        assert event.severity == "page"

        # Every alert event and span-stamped log record resolves in the
        # run's trace tree -- alert, log line, flamegraph span: one id.
        trees = build_span_trees(tracer.events, scope=scope)
        span_ids = set()

        def walk(node):
            span_ids.add(node.span_id)
            for child in node.children:
                walk(child)

        for root in trees:
            walk(root)
        assert event.span_id == scope
        assert scope in span_ids

        log_records = read_log(sink)
        stamped = [r for r in log_records if r["span_id"] is not None]
        assert stamped, "fault run left no span-stamped log records"
        for log_record in stamped:
            assert log_record["span_id"] in span_ids, (
                f"log record {log_record['event']!r} span "
                f"{log_record['span_id']!r} not in the trace tree"
            )
        events = {r["event"] for r in log_records}
        assert {"runtime.plan", "worker.attempt", "runtime.quarantine",
                "resilience.retry", "runtime.launch"} <= events
