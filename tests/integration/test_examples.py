"""Every example script runs to completion from a clean interpreter."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_six_examples_present():
    assert len(EXAMPLES) >= 6
    assert any(p.stem == "quickstart" for p in EXAMPLES)
