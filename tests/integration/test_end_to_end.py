"""Cross-module integration: calibration -> model -> kernels -> reports."""

import numpy as np
import pytest

from repro.approaches import PerBlockApproach, Workload, best_approach
from repro.gpu import GTX480, QUADRO_6000
from repro.kernels.batched import (
    QrFactors,
    diagonally_dominant_batch,
    qr_reconstruction_error,
    qr_unpack,
    random_batch,
    rhs_batch,
    solve_residual,
)
from repro.kernels.device import per_block_lu, per_block_qr, per_block_qr_solve
from repro.microbench import calibrate
from repro.model import ModelParameters, predict_per_block


class TestCalibrationFeedsModel:
    """The measured parameters must drive the same predictions as the
    paper's published ones."""

    def test_predictions_agree_between_parameter_sets(self):
        measured = calibrate(QUADRO_6000)
        published = ModelParameters.paper_table_iv()
        for n in (16, 56, 112):
            a = predict_per_block(measured, "qr", n).gflops
            b = predict_per_block(published, "qr", n).gflops
            assert a == pytest.approx(b, rel=0.06), n


class TestModelTracksEngine:
    """Predicted (Table VI) vs engine-measured, across kinds and sizes."""

    @pytest.mark.parametrize("kind", ["qr", "lu"])
    @pytest.mark.parametrize("n", [16, 32, 56])
    def test_no_spill_sizes_within_25_percent(self, kind, n):
        params = ModelParameters.paper_table_iv()
        predicted = predict_per_block(params, kind, n).gflops
        def dd_gen(b, m, k, dtype, seed):
            return diagonally_dominant_batch(b, m, dtype=dtype, seed=seed)

        gen = random_batch if kind == "qr" else dd_gen
        a = gen(2, n, n, dtype=np.float32, seed=n)
        runner = per_block_qr if kind == "qr" else per_block_lu
        measured = runner(a).launch.throughput_gflops()
        assert measured == pytest.approx(predicted, rel=0.25), (kind, n)


class TestDispatcherRunsRealKernels:
    """Pick the winning approach, then actually execute the workload."""

    def test_per_block_choice_solves_the_problem(self):
        work = Workload.square("qr", 48, 8000)
        assert best_approach(work).name == "per-block"
        a = diagonally_dominant_batch(4, 48, dtype=np.float32)
        b = rhs_batch(4, 48, dtype=np.float32)[:, :, 0]
        res = per_block_qr_solve(a, b)
        assert solve_residual(a, res.output, b) < 5e-5

    def test_per_thread_choice_factors_the_problem(self):
        from repro.kernels.device import per_thread_factor

        work = Workload.square("qr", 6, 64000)
        assert best_approach(work).name == "per-thread"
        a = random_batch(64, 6, 6, dtype=np.float32)
        res = per_thread_factor(a, "qr")
        q = qr_unpack(QrFactors(res.output, res.extra))
        r = np.triu(res.output)
        assert qr_reconstruction_error(a, q, r) < 1e-4


class TestCrossDevice:
    """The same code runs on other device presets with sensible scaling."""

    def test_gtx480_outruns_quadro(self):
        # Higher clock + one more SM: strictly faster at the same work.
        a = random_batch(2, 32, 32, dtype=np.float32)
        q6000 = per_block_qr(a, device=QUADRO_6000).launch.throughput_gflops()
        gtx = per_block_qr(a, device=GTX480).launch.throughput_gflops()
        assert gtx > q6000

    def test_calibration_scales_with_device(self):
        p_q = calibrate(QUADRO_6000)
        p_g = calibrate(GTX480)
        assert p_g.global_bandwidth > p_q.global_bandwidth
        assert p_g.shared_bandwidth > p_q.shared_bandwidth

    def test_per_block_approach_on_other_device(self):
        pb = PerBlockApproach(device=GTX480)
        assert pb.gflops(Workload.square("qr", 56, 8000)) > 0


class TestNumericalAgreementAcrossPaths:
    """Batched, per-thread, and per-block paths compute identical factors."""

    def test_three_paths_one_answer(self):
        from repro.kernels.batched import qr_factor
        from repro.kernels.device import per_thread_factor

        a = random_batch(4, 16, 16, dtype=np.float32, seed=99)
        batched = qr_factor(a.copy())
        thread = per_thread_factor(a.copy(), "qr")
        block = per_block_qr(a.copy())
        np.testing.assert_array_equal(batched.packed, thread.output)
        np.testing.assert_allclose(batched.packed, block.output, atol=2e-4)


class TestCli:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table7" in out and "fig9" in out

    def test_run_command(self, capsys):
        from repro.__main__ import main

        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_rejects_unknown(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_all_with_output_dir(self, tmp_path, capsys, monkeypatch):
        from repro import __main__ as cli

        # Patch the registry to two cheap experiments for the smoke run.
        from repro.reporting import experiments as exp

        small = {"table1": exp.EXPERIMENTS["table1"], "fig2": exp.EXPERIMENTS["fig2"]}
        monkeypatch.setattr(exp, "EXPERIMENTS", small)
        monkeypatch.setattr(
            "repro.reporting.experiments.list_experiments", lambda: list(small)
        )
        monkeypatch.setattr(cli, "list_experiments", lambda: list(small))
        assert cli.main(["all", "-o", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "fig2.txt").exists()


class TestFigure7ConsistentWithEngine:
    """The Figure-7 analytic 2D-cyclic line and the engine-measured
    per-block QR solve were built independently; they must agree."""

    @pytest.mark.parametrize("n", [16, 32, 48, 64])
    def test_analytic_2d_matches_engine_within_15pct(self, n):
        from repro.layouts import estimate_qr_solve

        params = ModelParameters.paper_table_iv()
        a = diagonally_dominant_batch(2, n, dtype=np.float32, seed=n)
        b = rhs_batch(2, n, dtype=np.float32)[:, :, 0]
        measured = per_block_qr_solve(a, b).launch.throughput_gflops(10000)
        analytic = estimate_qr_solve(params, "cyclic2d", n).gflops
        assert measured == pytest.approx(analytic, rel=0.15), n
