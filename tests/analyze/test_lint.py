"""Static linter tests: golden fixtures, suppression, repo self-lint."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analyze.lint import RULES, lint_file, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Fixture file -> (rule, expected finding count).
GOLDEN = {
    "bad_rpr001.py": ("RPR001", 3),
    "bad_rpr002.py": ("RPR002", 1),
    "bad_rpr003.py": ("RPR003", 4),
    "bad_rpr004.py": ("RPR004", 1),
    "bad_rpr005.py": ("RPR005", 2),
    "bad_rpr006.py": ("RPR006", 1),
}


class TestGoldenFixtures:
    @pytest.mark.parametrize("filename, expected", GOLDEN.items())
    def test_each_rule_fires_on_its_fixture(self, filename, expected):
        rule, count = expected
        findings = lint_file(FIXTURES / filename, respect_scope=False)
        assert [f.rule for f in findings] == [rule] * count

    def test_fixture_lines_match_docstrings(self):
        findings = lint_file(FIXTURES / "bad_rpr001.py", respect_scope=False)
        assert [f.line for f in findings] == [7, 8, 9]
        findings = lint_file(FIXTURES / "bad_rpr005.py", respect_scope=False)
        assert [f.line for f in findings] == [5, 7]

    def test_good_halves_are_clean(self):
        # Delete the bad_* function from each fixture: zero findings.
        for filename in ("bad_rpr001.py", "bad_rpr003.py", "bad_rpr005.py"):
            source = (FIXTURES / filename).read_text()
            head, _, tail = source.partition("def good_")
            trimmed = "\n".join(
                line
                for line in head.splitlines()
                if not line.startswith(("def bad_", "    "))
            )
            cleaned = trimmed + "\ndef good_" + tail
            assert lint_source(cleaned, respect_scope=False) == []


class TestSuppression:
    def test_noqa_with_code_suppresses(self):
        src = (
            "import numpy as np\n"
            "x = np.einsum('bi,bi->b', a, b)  # noqa: RPR001 -- test\n"
        )
        assert lint_source(src, path="kernels/device/k.py") == []

    def test_bare_noqa_suppresses_everything(self):
        src = "y = x == 1.0  # noqa\n"
        assert lint_source(src, respect_scope=False) == []

    def test_wrong_code_does_not_suppress(self):
        # The wrong code neither silences RPR005 nor survives the
        # unused-suppression audit.
        src = "y = x == 1.0  # noqa: RPR001\n"
        findings = lint_source(src, respect_scope=False)
        assert sorted(f.rule for f in findings) == ["RPR005", "RPR006"]


class TestUnusedNoqa:
    def test_used_suppression_is_not_flagged(self):
        src = (
            "import numpy as np\n"
            "x = np.einsum('bi,bi->b', a, b)  # noqa: RPR001 -- used\n"
        )
        assert lint_source(src, path="kernels/device/k.py") == []

    def test_unused_suppression_is_flagged(self):
        src = "x = a + b  # noqa: RPR001 -- nothing here\n"
        findings = lint_source(src, path="kernels/device/k.py")
        assert [f.rule for f in findings] == ["RPR006"]
        assert "RPR001" in findings[0].message

    def test_scope_skipped_rule_is_not_audited(self):
        # RPR001 does not run outside kernel dirs, so the linter cannot
        # prove the suppression stale and must leave it alone.
        src = "x = a + b  # noqa: RPR001 -- out of scope\n"
        assert lint_source(src, path="model/cpu_model.py") == []

    def test_foreign_codes_are_ignored(self):
        src = "x = a + b  # noqa: BLE001 -- ruff's business\n"
        assert lint_source(src, path="kernels/device/k.py") == []

    def test_bare_noqa_is_exempt(self):
        src = "x = a + b  # noqa\n"
        assert lint_source(src, path="kernels/device/k.py") == []

    def test_rule_subset_limits_the_audit(self):
        # RPR006 alone cannot audit RPR001 suppressions: the rule that
        # would prove them stale never ran.
        src = "x = a + b  # noqa: RPR001 -- unaudited\n"
        findings = lint_source(
            src, path="kernels/device/k.py", rules=["RPR006"]
        )
        assert findings == []
        findings = lint_source(
            src, path="kernels/device/k.py", rules=["RPR001", "RPR006"]
        )
        assert [f.rule for f in findings] == ["RPR006"]

    def test_rpr006_can_be_suppressed_itself(self):
        src = "x = a + b  # noqa: RPR001, RPR006 -- keep for symmetry\n"
        assert lint_source(src, path="kernels/device/k.py") == []


class TestScope:
    def test_rules_respect_path_scope(self):
        src = "import numpy as np\nx = np.einsum('bi,bi->b', a, b)\n"
        assert lint_source(src, path="model/cpu_model.py") == []
        hits = lint_source(src, path="kernels/batched/qr.py")
        assert [f.rule for f in hits] == ["RPR001"]

    def test_rpr005_skips_tests(self):
        src = "assert x == 1.0\n"
        assert lint_source(src, path="tests/test_model.py") == []
        assert lint_source(src, path="model/calib.py")

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", path="x.py")
        assert [f.rule for f in findings] == ["RPR000"]


class TestSelfLint:
    def test_repo_source_tree_is_clean(self):
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_rule_is_exercised_by_a_fixture(self):
        assert set(GOLDEN[f][0] for f in GOLDEN) == set(RULES)


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analyze", *args],
            capture_output=True,
            text=True,
            cwd=str(REPO_SRC.parents[1]),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_lint_strict_fails_on_fixture(self):
        proc = self._run(
            "lint", "--strict", "--json", str(FIXTURES / "bad_rpr004.py")
        )
        assert proc.returncode == 1
        findings = json.loads(proc.stdout)
        assert [f["rule"] for f in findings] == ["RPR004"]

    def test_lint_strict_passes_on_repo(self):
        proc = self._run("lint", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_unknown_rule_is_an_error(self):
        proc = self._run("lint", "--rules", "RPR999")
        assert proc.returncode == 2
