"""Property test: static counts == analytic model for randomized shapes.

The registry pins three sizes; here hypothesis draws arbitrary small
``(kind, m, n)`` shapes and requires the abstract interpreter's charge
totals to equal :func:`repro.model.per_block_counts` term for term, and
every kernel's claimed FLOPs to equal the paper-convention count from
:mod:`repro.model.flops`.  Any kernel/model drift at *any* shape -- not
just the swept ones -- fails here first.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.costcheck import CostCase, interpret
from repro.analyze.costcheck.checks import analytic_flops, model_terms
from repro.analyze.registry import _hpd, _problems, _tall
from repro.model.flops import lu_flops, matrix_bytes, qr_flops

KINDS = st.sampled_from(
    ["lu", "lu_pivot", "qr", "qr_solve", "gauss_jordan", "cholesky",
     "least_squares"]
)


def _build_case(kind, m, n):
    from repro.kernels.device.per_block_cholesky import per_block_cholesky
    from repro.kernels.device.per_block_gj import per_block_gauss_jordan
    from repro.kernels.device.per_block_lstsq import per_block_least_squares
    from repro.kernels.device.per_block_lu import per_block_lu
    from repro.kernels.device.per_block_lu_pivot import per_block_lu_pivot
    from repro.kernels.device.per_block_qr import per_block_qr, per_block_qr_solve

    def run(batch, seed):
        if kind == "cholesky":
            return per_block_cholesky(_hpd(n, seed, batch))
        if kind in ("qr", "least_squares"):
            a, b = _tall(m, n, seed, batch)
            if kind == "qr":
                return per_block_qr(a)
            return per_block_least_squares(a, b)
        a, b = _problems(n, seed, batch)
        if kind == "lu":
            return per_block_lu(a)
        if kind == "lu_pivot":
            return per_block_lu_pivot(a)
        if kind == "qr_solve":
            return per_block_qr_solve(a, b)
        return per_block_gauss_jordan(a, b)

    return CostCase(
        name=f"prop_{kind}", op=kind, family="per_block",
        m=m, n=n, seed=1234, run=run,
    )


@settings(max_examples=20, deadline=None)
@given(kind=KINDS, n=st.integers(2, 9), extra=st.integers(0, 4))
def test_interpreted_counts_equal_analytic_counts(kind, n, extra):
    m = n + extra if kind in ("qr", "least_squares") else n
    case = _build_case(kind, m, n)
    fp = interpret(case).footprint
    expected = model_terms(case)
    assert fp.terms() == expected, {
        term: (fp.terms()[term], expected[term])
        for term in expected
        if fp.terms()[term] != expected[term]
    }


@settings(max_examples=15, deadline=None)
@given(kind=st.sampled_from(["qr", "lu"]), n=st.integers(2, 10))
def test_per_thread_claims_match_the_paper_conventions(kind, n):
    from repro.kernels.device.per_thread import per_thread_factor

    def run(batch, seed):
        a, _ = _problems(n, seed, batch)
        return per_thread_factor(a, kind=kind)

    case = CostCase(
        name=f"prop_thread_{kind}", op=kind, family="per_thread",
        m=n, n=n, seed=99, run=run,
    )
    fp = interpret(case).footprint
    expected = qr_flops(n, n) if kind == "qr" else lu_flops(n)
    assert fp.flops_per_problem == expected
    # DRAM traffic is read + write of the matrix, plus spill re-touches
    assert fp.global_bytes - fp.spill_bytes == 2 * matrix_bytes(n, n)


@settings(max_examples=20, deadline=None)
@given(kind=KINDS, n=st.integers(2, 9), extra=st.integers(0, 4))
def test_kernel_claimed_flops_equal_model_flops(kind, n, extra):
    m = n + extra if kind in ("qr", "least_squares") else n
    case = _build_case(kind, m, n)
    fp = interpret(case).footprint
    assert fp.flops_per_problem == analytic_flops(kind, m, n)
