"""Static cost certifier tests: interpreter, checks, baselines, CLI."""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analyze.costcheck import (
    COUNT_TERMS,
    AbstractionError,
    CostCase,
    Footprint,
    UnknownCaseError,
    certify_case,
    cost_cases,
    diff_terms,
    interpret,
    run_costcheck,
    select_cases,
)
from repro.analyze.registry import sweep_cases
from repro.gpu.device import QUADRO_6000
from repro.gpu.registers import RegisterAllocation
from repro.kernels.device.per_block_lu import per_block_lu
from repro.model.block_config import BlockConfig
from repro.observe.metrics import MetricsRegistry, set_default_registry

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "benchmarks" / "baselines" / "costcheck_footprints.json"


def _lu_case(m, n, run, name="per_block_lu", op="lu", family="per_block"):
    return CostCase(name=name, op=op, family=family, m=m, n=n, seed=7, run=run)


def _random_batch(batch, n, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    a = rng.standard_normal((batch, n, n)).astype(np.float32)
    return a + n * np.eye(n, dtype=np.float32)


class TestRegistry:
    def test_mirrors_the_sanitize_sweep(self):
        ours = [(c.name, f"{c.m}x{c.n}") for c in cost_cases()]
        theirs = [(c.kernel, c.shape) for c in sweep_cases()]
        assert ours == theirs
        assert len(ours) == 27

    def test_keys_are_unique(self):
        keys = [c.key for c in cost_cases()]
        assert len(keys) == len(set(keys))

    def test_select_by_name_and_key(self):
        assert len(select_cases(["per_block_lu"])) == 3
        assert len(select_cases(["per_block_lu[4x4]"])) == 1

    def test_unknown_case_is_a_spec_error(self):
        with pytest.raises(UnknownCaseError):
            select_cases(["per_block_nope"])


class TestInterpreter:
    def test_lu_4x4_golden_footprint(self):
        # n=4 at 64 threads: rdim=8, hreg=wreg=1, so every column step
        # has a one-row tile.  Per column: 1+1 flop, 1 div, 4+2 shared
        # (2 of them writes), 3 syncs; 3 columns; load+store 2*4*4*4 B.
        case = [c for c in cost_cases() if c.key == "per_block_lu[4x4]"][0]
        fp = interpret(case).footprint
        assert fp.flop_ops == 6.0
        assert fp.divs == 3.0
        assert fp.sqrts == 0.0
        assert fp.shared == 18.0
        assert fp.shared_writes == 6.0
        assert fp.syncs == 9.0
        assert fp.global_bytes == 128.0
        assert fp.threads == 64
        assert fp.registers == 15  # 8 baseline + 6 workspace + 1x1 tile
        assert fp.shared_bytes == 80.0  # (8 + 8 + 4) words * 4 B

    def test_cholesky_4x4_golden_footprint(self):
        case = [c for c in cost_cases() if c.key == "per_block_cholesky[4x4]"][0]
        fp = interpret(case).footprint
        assert fp.sqrts == 4.0
        assert fp.divs == 4.0
        assert fp.syncs == 12.0
        assert fp.flop_ops == 6.0  # 4 column ops + 4 half-updates of N=1
        assert fp.global_bytes == 128.0

    def test_tape_is_batch_invariant(self):
        case = [c for c in cost_cases() if c.key == "per_block_qr[8x4]"][0]
        interp = interpret(case)
        assert interp.tape  # non-empty ordered charge stream
        kinds = {event[0] for event in interp.tape}
        assert {"alloc", "flops", "shared", "sync", "global"} <= kinds

    def test_batch_dependent_kernel_fails_certification(self):
        # A per-block kernel whose launch geometry depends on the batch
        # size has no shape-only footprint; the witness tapes diverge.
        def run(batch, seed):
            cfg = BlockConfig(m=4, n=4, threads=64 if batch == 1 else 256)
            return per_block_lu(_random_batch(batch, 4, seed), config=cfg)

        with pytest.raises(AbstractionError):
            interpret(_lu_case(4, 4, run))

    def test_data_dependent_per_thread_fails_certification(self):
        def run(batch, seed):
            return SimpleNamespace(
                batch=batch,
                dram_bytes=128.0 * batch * batch,  # superlinear in batch
                flops_per_problem=100.0,
                registers=RegisterAllocation(QUADRO_6000, 20),
            )

        case = _lu_case(4, 4, run, name="fake_thread", family="per_thread")
        with pytest.raises(AbstractionError):
            interpret(case)


class TestChecks:
    def test_small_sweep_is_fully_certified(self):
        reports = run_costcheck([c for c in cost_cases() if c.n == 4])
        assert len(reports) == 9
        for report in reports:
            assert report.ok, (report.footprint.key, report.model_mismatches,
                               report.dynamic_mismatches,
                               report.occupancy_violation)
            assert report.occupancy["blocks_per_sm"] >= 1

    def test_perturbed_kernel_is_caught_with_per_term_diffs(self):
        # The kernel silently factors 5x5 problems while the case (and
        # hence the model) says 4x4 -- exactly the drift the certifier
        # exists to catch.  Every major term must carry a diff.
        def run(batch, seed):
            return per_block_lu(_random_batch(batch, 5, seed))

        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            report = certify_case(_lu_case(4, 4, run))
        finally:
            set_default_registry(previous)
        assert not report.ok
        for term in ("flop_ops", "global_bytes", "syncs", "divs", "shared"):
            assert term in report.model_mismatches, report.model_mismatches
        # drift is observable: one metric sample per mismatching term
        assert (
            registry.value(
                "repro_costcheck_mismatch_total",
                kernel="per_block_lu", term="flop_ops", check="model",
            )
            == 1.0
        )

    def test_report_dict_is_json_clean(self):
        case = [c for c in cost_cases() if c.key == "per_thread_qr[8x8]"][0]
        report = certify_case(case)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["occupancy"]["spills"] is True  # n=8 spills
        assert payload["footprint"]["spill_bytes"] > 0


class TestFootprint:
    def test_terms_round_trip(self):
        fp = Footprint(
            kernel="k", op="lu", family="per_block", m=4, n=4,
            threads=64, registers=15, flop_ops=6.0, syncs=9.0,
        )
        clone = Footprint.from_dict(fp.to_dict())
        assert clone == fp
        assert set(fp.terms()) == set(COUNT_TERMS)

    def test_diff_terms_reports_both_sides(self):
        a = {"flop_ops": 6.0, "syncs": 9.0}
        b = {"flop_ops": 7.0, "syncs": 9.0}
        assert diff_terms(a, b) == {"flop_ops": (6.0, 7.0)}
        assert diff_terms(a, a) == {}
        # a missing term reads as zero, so it still surfaces
        assert diff_terms({"flop_ops": 6.0}, {}) == {"flop_ops": (6.0, 0.0)}


class TestBaseline:
    def test_checked_in_baseline_is_fresh(self):
        entries = json.loads(BASELINE.read_text())
        by_key = {e["footprint"]["kernel"] + "[" + e["shape"] + "]": e for e in entries}
        assert len(by_key) == 27
        for case in cost_cases():
            fp = interpret(case).footprint
            stored = Footprint.from_dict(by_key[fp.key]["footprint"])
            assert diff_terms(fp.terms(), stored.terms()) == {}, fp.key


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analyze", *args],
            capture_output=True,
            text=True,
            cwd=str(REPO),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_verify_strict_passes_on_subset(self):
        proc = self._run(
            "costcheck", "verify", "--strict",
            "--cases", "per_block_lu[4x4],per_thread_lu[4x4]",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "certified" in proc.stdout

    def test_unknown_case_exits_2(self):
        proc = self._run("costcheck", "verify", "--cases", "per_block_nope")
        assert proc.returncode == 2
        assert "unknown case" in proc.stderr

    def test_diff_against_doctored_baseline_exits_1(self, tmp_path):
        entries = json.loads(BASELINE.read_text())
        entry = next(
            e for e in entries
            if e["footprint"]["kernel"] == "per_block_lu"
            and e["shape"] == "4x4"
        )
        entry["footprint"]["flop_ops"] += 7
        entry["footprint"]["global_bytes"] -= 32
        entry["footprint"]["syncs"] += 1
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(entries))
        proc = self._run(
            "costcheck", "diff", str(doctored), "--cases", "per_block_lu[4x4]"
        )
        assert proc.returncode == 1
        for term in ("flop_ops", "global_bytes", "syncs"):
            assert term in proc.stdout

    def test_diff_clean_exits_0(self):
        proc = self._run(
            "costcheck", "diff", str(BASELINE), "--cases", "per_block_lu[4x4]"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_missing_baseline_exits_2(self, tmp_path):
        proc = self._run("costcheck", "diff", str(tmp_path / "nope.json"))
        assert proc.returncode == 2

    def test_table_json_has_every_term(self):
        proc = self._run(
            "costcheck", "table", "--json", "--cases", "per_block_cholesky[4x4]"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        (entry,) = json.loads(proc.stdout)
        fields = {f.name for f in dataclasses.fields(Footprint)}
        assert set(COUNT_TERMS) <= fields | {"registers", "threads"}
        for term in COUNT_TERMS:
            assert term in entry["footprint"]
        assert entry["occupancy"]["limiter"]
