"""RPR004 golden fixture -- expected findings: 1 (line 9).

The rule is file-scoped (one ``charge_shared`` anywhere absolves the
file), so the paired good example lives in ``docs/analyze.md``.
"""


def bad_alloc(engine):
    return engine.allocate_shared(64)
