"""RPR005 golden fixture -- expected findings: 2 (lines 5, 7)."""


def bad_compare(x):
    if x == 0.5:
        return True
    return x != 1.0


def good_compare(x, tol):
    return abs(x - 0.5) < tol
