"""RPR003 golden fixture -- expected findings: 4 (lines 10, 11, 12, 13)."""

import random
import time

import numpy as np


def bad_entropy(registry):
    stamp = time.time()
    noise = np.random.rand(4)
    jitter = random.random()
    names = [key for key in registry._families]
    return stamp, noise, jitter, names


def good_entropy(registry, rng, now):
    noise = rng.standard_normal(4)
    names = sorted(registry._families)  # sorted(): deterministic order
    return now, noise, names
