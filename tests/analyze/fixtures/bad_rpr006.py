"""RPR006 golden fixture: a stale suppression on a clean line."""

import numpy as np


def bad_unused_suppression(a, b):
    # The einsum below contracts nothing, so RPR001 has nothing to
    # report here and the suppression is dead weight.
    return np.einsum("bi,bi->bi", a, b)  # noqa: RPR001 -- stale


def good_used_suppression(a, b):
    return np.einsum("bi,bi->b", a, b)  # noqa: RPR001 -- genuinely fires
