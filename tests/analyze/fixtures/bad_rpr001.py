"""RPR001 golden fixture -- expected findings: 3 (lines 7, 8, 9)."""

import numpy as np


def bad_reductions(a, b):
    total = np.einsum("bi,bi->b", a, b)
    proj = a.dot(b)
    mass = a.sum()
    return total, proj, mass


def good_reductions(a, b):
    pairwise = np.einsum("bi,bj->bij", a, b)  # non-reducing outer: clean
    per_problem = (a * b).sum(axis=1)  # explicit axis: clean
    return pairwise, per_problem
