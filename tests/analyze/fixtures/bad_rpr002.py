"""RPR002 golden fixture -- expected findings: 1 (line 5)."""


def bad_publish(kernel, index, values):
    kernel.sh_col.write(index, values)


def good_publish(kernel, index, values):
    kernel.sh_col.write(index, values)
    kernel.engine.sync()
