"""Dynamic race-sanitizer tests: toy hazards, clean kernels, invariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.registry import run_sweep, sweep_cases
from repro.analyze.sanitizer import (
    SharedSanitizer,
    sanitize_enabled,
    sanitizing,
)
from repro.gpu.device import QUADRO_6000
from repro.gpu.simt import BlockEngine
from repro.kernels.device.per_block_lu import per_block_lu
from repro.observe.metrics import (
    MetricsRegistry,
    set_default_registry,
)


def _toy_engine(batch=2, sanitize=True):
    return BlockEngine(
        QUADRO_6000,
        threads_per_block=4,
        registers_per_thread=16,
        batch=batch,
        sanitize=sanitize,
    )


def _race(eng, phase="toy:update"):
    """Write lane 0 / read lane 1 on one word, no barrier between."""
    sh = eng.allocate_shared(8, name="sh_toy")
    with eng.phase(phase):
        sh.write(0, 1.0, lane=0)
        sh.read(0, lane=1)
    eng.sync()
    return eng.result().sanitizer


def _dominant(batch, n=6, seed=3):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((batch, n, n)).astype(np.float32)
    return a + n * np.eye(n, dtype=np.float32)


class TestToyHazards:
    def test_write_read_race_is_exactly_one_hazard(self):
        report = _race(_toy_engine())
        assert [h.kind for h in report.hazards] == ["write-read"]
        hazard = report.hazards[0]
        assert hazard.phase == "toy:update"
        assert hazard.array == "sh_toy"
        assert hazard.epoch == 0
        assert hazard.words == (0,)
        assert hazard.lanes == (0, 1)
        assert not report.ok
        assert report.races == (hazard,)

    def test_sync_between_accesses_clears_the_race(self):
        eng = _toy_engine()
        sh = eng.allocate_shared(8, name="sh_toy")
        sh.write(0, 1.0, lane=0)
        eng.sync()
        sh.read(0, lane=1)
        eng.sync()
        assert eng.result().sanitizer.ok

    def test_write_write_and_read_write_kinds(self):
        eng = _toy_engine()
        sh = eng.allocate_shared(8, name="sh_toy")
        sh.write(0, 1.0, lane=0)
        sh.write(0, 2.0, lane=1)  # write-write
        eng.sync()
        sh.read(1, lane=0)
        sh.write(1, 3.0, lane=1)  # read-write
        eng.sync()
        kinds = sorted(h.kind for h in eng.result().sanitizer.hazards)
        assert kinds == ["read-write", "write-write"]

    def test_same_lane_sequence_is_not_a_race(self):
        eng = _toy_engine()
        sh = eng.allocate_shared(8, name="sh_toy")
        sh.write(0, 1.0, lane=2)
        sh.read(0, lane=2)
        eng.sync()
        assert eng.result().sanitizer.ok

    def test_disjoint_words_do_not_conflict(self):
        eng = _toy_engine()
        sh = eng.allocate_shared(8, name="sh_toy")
        sh.write(np.arange(4), np.ones(4), lane=0)
        sh.read(np.arange(4, 8), lane=1)
        eng.sync()
        assert eng.result().sanitizer.ok

    def test_never_synced_write_is_flagged(self):
        eng = _toy_engine()
        sh = eng.allocate_shared(8, name="sh_toy")
        with eng.phase("init"):
            sh.write(0, 1.0)
        report = eng.result().sanitizer
        assert [h.kind for h in report.hazards] == ["never-synced"]
        assert report.hazards[0].phase == "init"
        assert report.races == ()

    def test_redundant_sync_diagnostic_and_metric(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            eng = _toy_engine()
            sh = eng.allocate_shared(8, name="sh_toy")
            sh.write(0, 1.0)
            eng.sync()  # useful: traffic since start
            with eng.phase("spin"):
                eng.sync()  # wasted: nothing moved
            report = eng.result().sanitizer
        finally:
            set_default_registry(previous)
        assert report.syncs == 2
        assert report.redundant_syncs == 1
        kinds = [h.kind for h in report.hazards]
        assert kinds == ["redundant-sync"]
        assert report.hazards[0].phase == "spin"
        assert registry.value("repro_sync_redundant", phase="spin") == 1.0

    def test_charged_traffic_satisfies_the_sync_audit(self):
        # Cost-sketch kernels charge shared traffic without functional
        # accesses; their barriers are not "wasted".
        eng = _toy_engine()
        eng.charge_shared(4)
        eng.sync()
        report = eng.result().sanitizer
        assert report.redundant_syncs == 0
        assert report.ok

    def test_hazard_metric_counts_races(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            _race(_toy_engine())
        finally:
            set_default_registry(previous)
        assert (
            registry.value(
                "repro_sanitizer_hazards", kind="write-read", phase="toy:update"
            )
            == 1.0
        )


class TestCleanKernels:
    def test_full_sweep_is_clean(self):
        results = run_sweep()
        assert len(results) == len(sweep_cases())
        bad = [r for r in results if not r["ok"]]
        assert bad == []
        # The per-block cases genuinely exercised shared memory...
        block = [r for r in results if r["report"] is not None]
        assert block and all(r["report"]["syncs"] > 0 for r in block)
        # ...and none of their barriers were wasted.
        assert all(r["report"]["redundant_syncs"] == 0 for r in block)

    @settings(max_examples=10, deadline=None)
    @given(batch=st.integers(min_value=1, max_value=16))
    def test_hazard_detection_is_batch_size_invariant(self, batch):
        # Racy engine: the same single hazard at every batch size.
        racy = _race(_toy_engine(batch=batch))
        assert [h.kind for h in racy.hazards] == ["write-read"]
        # Clean kernel: zero hazards at every batch size.
        with sanitizing(True):
            clean = per_block_lu(_dominant(batch)).launch.sanitizer
        assert clean.ok
        assert clean.redundant_syncs == 0


class TestOffMode:
    def test_default_engine_has_no_sanitizer(self):
        assert not sanitize_enabled()
        result = per_block_lu(_dominant(2))
        assert result.launch.sanitizer is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        result = per_block_lu(_dominant(2))
        assert result.launch.sanitizer is not None

    def test_off_run_is_bitwise_identical(self):
        a = _dominant(3)
        off = per_block_lu(a)
        with sanitizing(True):
            on = per_block_lu(a)
        assert np.array_equal(off.output, on.output)
        assert off.cycles == on.cycles
        assert off.launch.phase_totals == on.launch.phase_totals

    def test_sanitizing_context_restores(self):
        assert not sanitize_enabled()
        with sanitizing(True):
            assert sanitize_enabled()
            with sanitizing(False):
                assert not sanitize_enabled()
            assert sanitize_enabled()
        assert not sanitize_enabled()


class TestNormalize:
    @pytest.mark.parametrize(
        "index, expected",
        [
            (3, [3]),
            ([4, 2, 2], [2, 4]),
            (slice(1, 4), [1, 2, 3]),
            (np.array([True, False, True, False] * 2), [0, 2, 4, 6]),
        ],
    )
    def test_index_forms(self, index, expected):
        words = SharedSanitizer._normalize(index, 8)
        assert words.tolist() == expected
