"""FLOP-count conventions from Section III."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import (
    gauss_jordan_flops,
    least_squares_flops,
    lu_flops,
    matmul_flops,
    matrix_bytes,
    matrix_words,
    qr_flops,
    qr_flops_complex,
)

dims = st.integers(min_value=1, max_value=512)


class TestPaperAnchors:
    def test_7x7_qr_is_457_flops(self):
        # Section IV's worked example.
        assert qr_flops(7, 7) == pytest.approx(457, abs=0.5)

    def test_112x112_qr_is_1_87_mflops(self):
        # Section V: "A QR factorization on a 112x112 matrix performs
        # 1.87 MFLOPs".
        assert qr_flops(112, 112) == pytest.approx(1.87e6, rel=0.01)

    def test_7x7_matrix_traffic_is_392_bytes(self):
        # Section IV: 2 x 7 x 7 x 4 bytes read+write.
        assert 2 * matrix_bytes(7, 7) == 392

    def test_gauss_jordan_cubic(self):
        assert gauss_jordan_flops(10) == 1000

    def test_lu_two_thirds_cubic(self):
        assert lu_flops(6) == pytest.approx(144)

    def test_complex_qr_section_vii(self):
        # Section VII: 8mn^2 - 8/3 n^3.
        assert qr_flops_complex(240, 66) == pytest.approx(
            8 * 240 * 66**2 - 8 / 3 * 66**3
        )

    def test_least_squares_section_iii_d(self):
        m, n = 20, 10
        assert least_squares_flops(m, n) == pytest.approx(
            2 * m * n * n - 2 / 3 * n**3 + 1 / 3 * n**3
        )

    def test_matmul(self):
        assert matmul_flops(79, 16, 100) == 2 * 79 * 16 * 100


class TestValidation:
    def test_qr_rejects_wide(self):
        with pytest.raises(ValueError):
            qr_flops(4, 8)

    def test_least_squares_rejects_wide(self):
        with pytest.raises(ValueError):
            least_squares_flops(4, 8)

    def test_zero_dims_rejected(self):
        for fn in (gauss_jordan_flops, lu_flops):
            with pytest.raises(ValueError):
                fn(0)
        with pytest.raises(ValueError):
            qr_flops(0, 0)
        with pytest.raises(ValueError):
            matmul_flops(1, 0, 1)

    def test_matrix_words_complex_doubles(self):
        assert matrix_words(3, 4, complex_dtype=True) == 24
        assert matrix_bytes(3, 4, complex_dtype=True) == 96


class TestProperties:
    @given(n=dims)
    def test_qr_square_exceeds_lu(self, n):
        # QR does more work than LU on the same matrix.
        assert qr_flops(n, n) >= lu_flops(n)

    @given(n=st.integers(min_value=2, max_value=512))
    def test_counts_increase_with_n(self, n):
        assert qr_flops(n, n) > qr_flops(n - 1, n - 1)
        assert lu_flops(n) > lu_flops(n - 1)
        assert gauss_jordan_flops(n) > gauss_jordan_flops(n - 1)

    @given(m=dims, n=dims)
    def test_complex_qr_is_4x_real(self, m, n):
        if m < n:
            m, n = n, m
        assert qr_flops_complex(m, n) == pytest.approx(4 * qr_flops(m, n))

    @given(m=dims, n=dims)
    def test_taller_qr_does_more_work(self, m, n):
        if m < n:
            m, n = n, m
        assert qr_flops(m + 1, n) > qr_flops(m, n)
