"""CPU (MKL-like), hybrid (MAGMA-like) and streams baselines."""

import pytest

from repro.model import (
    CpuModel,
    HybridModel,
    I7_2600,
    ModelParameters,
    StreamsModel,
)


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


@pytest.fixture(scope="module")
def cpu():
    return CpuModel()


class TestCpuSpec:
    def test_peak_sp(self):
        # 4 cores x 3.4 GHz x 16 SP flops/cycle = 217.6 GFLOPS.
        assert I7_2600.peak_sp_flops == pytest.approx(217.6e9)


class TestCpuModel:
    def test_real_qr_56_near_headline(self, cpu):
        # Abstract: 29x vs our ~180 GFLOPS => MKL ~6.2 GFLOPS.
        assert cpu.gflops("qr", 56, batch=5000) == pytest.approx(6.2, rel=0.1)

    def test_complex_stap_sizes(self, cpu):
        # Table VII MKL columns: 5.4 / 36 / 27 GFLOPS.
        g1 = cpu.gflops("qr", 80, 16, batch=384, complex_dtype=True)
        g2 = cpu.gflops("qr", 240, 66, batch=128, complex_dtype=True)
        g3 = cpu.gflops("qr", 192, 96, batch=128, complex_dtype=True)
        assert g1 == pytest.approx(5.4, rel=0.15)
        assert g2 == pytest.approx(36, rel=0.35)
        assert g3 == pytest.approx(27, rel=0.15)

    def test_rate_grows_with_n(self, cpu):
        vals = [cpu.gflops("qr", n, batch=1000) for n in (8, 24, 56, 96, 144)]
        assert vals == sorted(vals)

    def test_never_exceeds_cpu_peak(self, cpu):
        for n in (8, 64, 256, 1024):
            assert cpu.gflops("qr", n, batch=100) * 1e9 < I7_2600.peak_sp_flops

    def test_small_batch_loses_parallelism(self, cpu):
        # 1 problem runs on one core; 4 problems use all cores.
        t1 = cpu.seconds("qr", 56, batch=1)
        t4 = cpu.seconds("qr", 56, batch=4)
        assert t4 == pytest.approx(t1)  # same wall time, 4x the work

    def test_batch_scaling_linear_beyond_cores(self, cpu):
        t4 = cpu.seconds("qr", 56, batch=4)
        t400 = cpu.seconds("qr", 56, batch=400)
        assert t400 == pytest.approx(100 * t4, rel=1e-6)

    def test_all_kinds_supported(self, cpu):
        for kind in ("qr", "lu", "gauss_jordan", "least_squares"):
            assert cpu.gflops(kind, 32, batch=100) > 0

    def test_unknown_kind_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.gflops("cholesky", 32)

    def test_zero_batch_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.seconds("qr", 32, batch=0)


class TestHybridModel:
    def test_small_problems_run_at_cpu_speed(self, params):
        # Section VI-A: "all problems less than 96 wide are done entirely
        # on the CPU" -- far below the per-block GPU rate.
        h = HybridModel(params)
        assert h.gflops("qr", 56, batch=100) < 10

    def test_gpu_start_pays_transfers_when_small(self, params):
        h = HybridModel(params)
        small_gpu = h.gflops("qr", 56, batch=10, gpu_start=True)
        small_cpu = h.gflops("qr", 56, batch=10, gpu_start=False)
        assert small_cpu > small_gpu

    def test_large_problems_approach_gemm_rate(self, params):
        # Figure 10: hybrid reaches ~400+ GFLOPS at n=8192.
        h = HybridModel(params)
        g = h.gflops("qr", 8192, batch=1)
        assert 350 < g < 560

    def test_monotone_improvement_with_size(self, params):
        h = HybridModel(params)
        vals = [h.gflops("qr", n) for n in (128, 512, 2048, 8192)]
        assert vals == sorted(vals)

    def test_crossover_with_panel_width(self, params):
        h = HybridModel(params)
        below = h.gflops("qr", 95)
        above = h.gflops("qr", 128)
        assert above > below * 2  # the blocked path finally engages

    def test_lu_supported(self, params):
        assert HybridModel(params).gflops("lu", 1024) > 0

    def test_invalid_inputs(self, params):
        h = HybridModel(params)
        with pytest.raises(ValueError):
            h.seconds_per_problem("qr", 0)
        with pytest.raises(ValueError):
            h.gflops("qr", 64, batch=0)
        with pytest.raises(ValueError):
            h.seconds_per_problem("cholesky", 64)


class TestStreamsModel:
    def test_launch_overhead_dominates_small(self, params):
        s = StreamsModel(params)
        per = s.seconds_per_problem("qr", 56)
        launch = 4 * 56 * s.config.launch_overhead
        assert launch / per > 0.5

    def test_slower_than_cpu_for_small_problems(self, params, cpu):
        # Section VI-C: "We could achieve better performance solving the
        # problems sequentially on the CPU."
        s = StreamsModel(params)
        assert s.gflops("qr", 56, batch=5000) < cpu.gflops("qr", 56, batch=5000)

    def test_streams_do_not_help(self, params):
        from repro.model import StreamsConfig

        base = StreamsModel(params)
        multi = StreamsModel(params, StreamsConfig(effective_concurrency=1.0))
        assert base.gflops("qr", 56, batch=100) == pytest.approx(
            multi.gflops("qr", 56, batch=100)
        )

    def test_lu_uses_fewer_calls(self, params):
        s = StreamsModel(params)
        qr_calls_time = s.seconds_per_problem("qr", 56)
        lu_calls_time = s.seconds_per_problem("lu", 56)
        assert lu_calls_time < qr_calls_time

    def test_invalid_inputs(self, params):
        s = StreamsModel(params)
        with pytest.raises(ValueError):
            s.seconds_per_problem("qr", 0)
        with pytest.raises(ValueError):
            s.gflops("qr", 8, batch=0)
        with pytest.raises(ValueError):
            s.seconds_per_problem("cholesky", 8)
