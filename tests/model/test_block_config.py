"""Launch-shape rule and register-tile geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LaunchConfigurationError
from repro.model import BlockConfig, block_config


class TestPaperShapes:
    def test_56x56_uses_64_threads(self):
        cfg = block_config(56, 56)
        assert cfg.threads == 64
        assert cfg.rdim == 8
        assert cfg.hreg == 7 and cfg.wreg == 7

    def test_switch_to_256_threads_at_80(self):
        # Figure 9: "The sharp drop from 64 to 80 happens because we
        # switch from 64 to 256 threads."
        assert block_config(72, 72).threads == 64
        assert block_config(80, 80).threads == 256

    def test_112x112_with_256_threads_is_7x7_tiles(self):
        # Section V: "256 threads can store a 112x112 single-precision
        # matrix ... each thread storing a 7x7 sub-matrix".
        cfg = BlockConfig(m=112, n=112, threads=256)
        assert cfg.hreg == 7 and cfg.wreg == 7

    def test_stap_80x16_fits_64_threads(self):
        cfg = block_config(80, 16, complex_dtype=True)
        assert cfg.threads == 64
        assert cfg.hreg == 10 and cfg.wreg == 2

    def test_panels_of_56x56(self):
        # "there are 7 panels in a 56x56 matrix with 64 threads".
        assert block_config(56, 56).panels == 7


class TestGeometry:
    def test_non_square_thread_count_rejected(self):
        with pytest.raises(LaunchConfigurationError):
            BlockConfig(m=8, n=8, threads=48)

    def test_zero_dims_rejected(self):
        with pytest.raises(LaunchConfigurationError):
            BlockConfig(m=0, n=8, threads=64)

    def test_registers_count_complex_double(self):
        real = BlockConfig(m=56, n=56, threads=64).registers_per_thread
        cplx = BlockConfig(m=56, n=56, threads=64, complex_dtype=True)
        assert cplx.registers_per_thread > real

    def test_column_tile_rows_shrink_by_panel(self):
        cfg = block_config(56, 56)
        assert cfg.column_tile_rows(0) == 7
        assert cfg.column_tile_rows(7) == 7  # still panel 0
        assert cfg.column_tile_rows(8) == 6  # panel 1
        assert cfg.column_tile_rows(55) == 1

    def test_column_tile_rows_floor_at_one(self):
        cfg = BlockConfig(m=16, n=64, threads=64)
        assert cfg.column_tile_rows(63) == 1

    def test_column_out_of_range(self):
        cfg = block_config(16, 16)
        with pytest.raises(ValueError):
            cfg.column_tile_rows(16)

    @given(
        m=st.integers(min_value=1, max_value=300),
        n=st.integers(min_value=1, max_value=300),
    )
    def test_tiles_cover_matrix(self, m, n):
        cfg = block_config(m, n)
        assert cfg.hreg * cfg.rdim >= m
        assert cfg.wreg * cfg.rdim >= n
        assert (cfg.hreg - 1) * cfg.rdim < m
        assert (cfg.wreg - 1) * cfg.rdim < n

    @given(n=st.integers(min_value=2, max_value=300))
    def test_register_need_grows_with_n(self, n):
        a = block_config(n, n)
        b = block_config(n - 1, n - 1)
        grows = a.registers_per_thread >= b.registers_per_thread
        assert grows or a.threads != b.threads
