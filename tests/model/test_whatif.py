"""What-if analysis: the model explains *why* each mapping performs."""

import pytest

from repro.model import ModelParameters, scale_parameters, whatif


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


class TestScaleParameters:
    def test_identity_scaling(self, params):
        out = scale_parameters(params)
        assert out.alpha_glb == params.alpha_glb
        assert out.gamma == params.gamma

    def test_individual_knobs(self, params):
        out = scale_parameters(params, global_bandwidth=2.0, alpha_sh=0.5)
        assert out.global_bandwidth == pytest.approx(2 * params.global_bandwidth)
        assert out.alpha_sh == pytest.approx(params.alpha_sh / 2)
        assert out.alpha_glb == params.alpha_glb  # untouched

    def test_gamma_scales_device_pipeline(self, params):
        out = scale_parameters(params, gamma=0.5)
        assert out.device.pipeline_latency == params.device.pipeline_latency // 2

    def test_sync_scales_device_curve(self, params):
        out = scale_parameters(params, alpha_sync=0.5)
        assert out.sync_latency(64) < params.sync_latency(64)

    def test_invalid_factor_rejected(self, params):
        with pytest.raises(ValueError):
            scale_parameters(params, gamma=0)


class TestSensitivities:
    def test_per_thread_is_pure_bandwidth(self, params):
        # Section IV's model: doubling DRAM bandwidth doubles throughput;
        # nothing else matters below the compute roof.
        s = whatif(params, "per-thread", "qr", 7)
        assert s.speedup("global_bandwidth") == pytest.approx(2.0)
        for knob in ("shared_latency", "sync_latency", "gamma"):
            assert s.speedup(knob) == pytest.approx(1.0)
        assert s.dominant_knob() == "global_bandwidth"

    def test_per_block_is_compute_and_shared_bound(self, params):
        # Section V's point: once the matrix is on-chip, gamma and the
        # shared-memory terms dominate; DRAM bandwidth barely matters.
        s = whatif(params, "per-block", "qr", 56)
        assert s.speedup("gamma") > 1.2
        assert s.speedup("shared_latency") > 1.1
        assert s.speedup("global_bandwidth") < 1.15
        assert s.dominant_knob() == "gamma"

    def test_lu_less_shared_sensitive_than_qr(self, params):
        # QR's reductions move more shared traffic per flop than LU.
        qr = whatif(params, "per-block", "qr", 56)
        lu = whatif(params, "per-block", "lu", 56)
        assert qr.speedup("shared_latency") > lu.speedup("shared_latency") - 0.05

    def test_unknown_approach_rejected(self, params):
        with pytest.raises(ValueError):
            whatif(params, "per-warp", "qr", 8)

    def test_baseline_matches_direct_prediction(self, params):
        from repro.model import predict_per_block

        s = whatif(params, "per-block", "qr", 32)
        assert s.baseline_gflops == pytest.approx(
            predict_per_block(params, "qr", 32).gflops
        )
