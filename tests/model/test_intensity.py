"""Arithmetic intensity / roofline (Section IV's simple model)."""

import pytest

from repro.model import (
    ModelParameters,
    arithmetic_intensity,
    factorization_intensity,
    qr_flops,
    roofline_gflops,
)


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


class TestIntensity:
    def test_paper_worked_example(self):
        # 7x7 QR: 457 flops / 392 bytes = 1.17 flops/byte.
        i = arithmetic_intensity(qr_flops(7, 7), 392)
        assert i == pytest.approx(1.17, abs=0.01)

    def test_factorization_intensity_reads_and_writes(self):
        i = factorization_intensity(qr_flops(7, 7), 7, 7)
        assert i == pytest.approx(457.33 / 392, rel=1e-3)

    def test_complex_halves_intensity_per_word(self):
        real = factorization_intensity(1000, 8, 8)
        cplx = factorization_intensity(1000, 8, 8, complex_dtype=True)
        assert cplx == pytest.approx(real / 2)

    def test_zero_traffic_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_intensity(100, 0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_intensity(-1, 100)


class TestRoofline:
    def test_paper_prediction_126_gflops(self, params):
        # Section IV: 1.17 flops/byte x 108 GB/s ~ 126 GFLOPS.
        g = roofline_gflops(params, 1.17)
        assert g == pytest.approx(126, rel=0.01)

    def test_caps_at_compute_peak(self, params):
        # Section V: a 112x112 per-block problem's intensity predicts
        # >2 TFLOPS, "beyond the max theoretical arithmetic throughput".
        g = roofline_gflops(params, 20.0)
        assert g == pytest.approx(params.device.peak_sp_flops / 1e9)

    def test_linear_below_ridge(self, params):
        assert roofline_gflops(params, 2.0) == pytest.approx(
            2 * roofline_gflops(params, 1.0)
        )

    def test_negative_intensity_rejected(self, params):
        with pytest.raises(ValueError):
            roofline_gflops(params, -0.1)
