"""The paper's headline claim, quantified: the model is accurate."""

import math

import pytest

from repro.model import model_accuracy


@pytest.fixture(scope="module")
def report():
    return model_accuracy(sizes=range(8, 145, 8))


class TestModelAccuracy:
    def test_accurate_where_it_claims_validity(self, report):
        # "This model accurately predicts and explains our performance
        # across different problem sizes": under 10% MAPE without spill.
        assert report.mape_no_spill < 0.10

    def test_worst_case_bounded(self, report):
        assert report.worst_no_spill < 0.20

    def test_spill_region_knowingly_worse(self, report):
        # Figure 9's "false predictions ... due to register spilling,
        # which our model does not consider".
        assert report.mape_spill > 2 * report.mape_no_spill

    def test_model_overpredicts_under_spill(self, report):
        # The model ignores a real cost, so its error is one-sided there.
        spill_points = [p for p in report.points if p.spills]
        assert spill_points
        assert all(p.error > 0 for p in spill_points)

    def test_covers_both_kinds_and_all_sizes(self, report):
        kinds = {p.kind for p in report.points}
        assert kinds == {"qr", "lu"}
        assert len(report.points) == 2 * len(range(8, 145, 8))

    def test_spill_flags_match_block_config(self, report):
        flagged = {p.n for p in report.points if p.spills}
        # 64 and 72 spill with 64 threads; 120+ spill with 256 threads.
        assert 64 in flagged
        assert 56 not in flagged

    def test_empty_region_is_nan(self):
        tiny = model_accuracy(sizes=[16])  # nothing spills at 16
        assert math.isnan(tiny.mape_spill)
        assert tiny.mape_no_spill < 0.10
