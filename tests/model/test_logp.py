"""Equations 1 and 2 of the paper."""

import pytest

from repro.model import (
    GlobalPhase,
    LocalPhase,
    ModelParameters,
    global_time,
    local_time,
    total_time,
)


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


class TestGlobalModel:
    def test_pure_latency(self, params):
        assert global_time(params, GlobalPhase(messages=3)) == 3 * 570

    def test_pure_bandwidth(self, params):
        # 108 GB at 1/108 s/GB is one second = one clock's worth of cycles.
        t = global_time(params, GlobalPhase(bytes=108e9))
        assert t == pytest.approx(params.device.clock_hz)

    def test_pure_flops(self, params):
        assert global_time(params, GlobalPhase(flops=100)) == 1800

    def test_terms_add(self, params):
        combined = global_time(params, GlobalPhase(messages=1, bytes=1e6, flops=10))
        parts = (
            global_time(params, GlobalPhase(messages=1))
            + global_time(params, GlobalPhase(bytes=1e6))
            + global_time(params, GlobalPhase(flops=10))
        )
        assert combined == pytest.approx(parts)

    def test_empty_phase_is_free(self, params):
        assert global_time(params, GlobalPhase()) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GlobalPhase(messages=-1)


class TestLocalModel:
    def test_pure_latency(self, params):
        assert local_time(params, LocalPhase(messages=2)) == 54

    def test_sync_term_uses_block_size(self, params):
        t64 = local_time(params, LocalPhase(syncs=1, threads=64))
        t256 = local_time(params, LocalPhase(syncs=1, threads=256))
        assert t64 == 46
        assert t256 > t64

    def test_shared_bandwidth_term(self, params):
        t = local_time(params, LocalPhase(bytes=880e9))
        assert t == pytest.approx(params.device.clock_hz)

    def test_flops_term_matches_global(self, params):
        lcl = local_time(params, LocalPhase(flops=50))
        glb = global_time(params, GlobalPhase(flops=50))
        assert lcl == glb

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LocalPhase(syncs=-1)


class TestTotalTime:
    def test_no_overlap_sum(self, params):
        glb = GlobalPhase(messages=1, bytes=1e6)
        lcl = LocalPhase(messages=10, syncs=2, flops=100)
        assert total_time(params, glb, lcl) == pytest.approx(
            global_time(params, glb) + local_time(params, lcl)
        )

    def test_shared_access_cheaper_than_global(self, params):
        # The premise of keeping data on-chip: same message count, same
        # byte count, the local phase is faster.
        glb = GlobalPhase(messages=5, bytes=1e6)
        lcl = LocalPhase(messages=5, bytes=1e6)
        assert local_time(params, lcl) < global_time(params, glb)
