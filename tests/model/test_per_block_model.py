"""Table-VI analytic model: per-column estimates and Figure 8/9 outputs."""

import pytest

from repro.model import (
    ModelParameters,
    estimate_lu_column,
    estimate_qr_column,
    block_config,
    panel_breakdown,
    predict_per_block,
)
from repro.model.per_block_model import LU_OPS, QR_OPS


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


class TestColumnEstimates:
    def test_qr_column_has_three_ops(self, params):
        est = estimate_qr_column(params, block_config(56, 56), 0)
        assert tuple(op.name for op in est.ops) == QR_OPS

    def test_lu_column_has_two_ops(self, params):
        est = estimate_lu_column(params, block_config(56, 56), 0)
        assert tuple(op.name for op in est.ops) == LU_OPS

    def test_qr_column_costs_more_than_lu(self, params):
        cfg = block_config(56, 56)
        qr = estimate_qr_column(params, cfg, 0)
        lu = estimate_lu_column(params, cfg, 0)
        assert qr.total > lu.total

    def test_later_columns_are_cheaper(self, params):
        cfg = block_config(56, 56)
        first = estimate_qr_column(params, cfg, 0)
        last = estimate_qr_column(params, cfg, 54)
        assert last.total < first.total

    def test_precise_math_costs_more(self, params):
        cfg = block_config(56, 56)
        fast = estimate_qr_column(params, cfg, 0, fast_math=True)
        precise = estimate_qr_column(params, cfg, 0, fast_math=False)
        assert precise.total > fast.total

    def test_complex_column_costs_more(self, params):
        # A complex MAC costs ~2 gamma (4 FMAs on 2 independent chains),
        # so complex columns cost more but less than 2x (shared/sync
        # traffic is dtype-independent in cycles).
        real_cfg = block_config(56, 56)
        cplx_cfg = block_config(56, 56, complex_dtype=True)
        real = estimate_qr_column(params, real_cfg, 0)
        cplx = estimate_qr_column(params, cplx_cfg, 0)
        assert real.total < cplx.total < 2 * real.total


class TestWholeFactorization:
    def test_56x56_qr_compute_near_paper_modeled(self, params):
        # Figure 8's modeled total (compute only) is in the same band as
        # the measured 150203 cycles of Table V; the analytic estimate
        # (no overhead terms) should land within ~25% below it.
        pred = predict_per_block(params, "qr", 56)
        assert 110_000 < pred.compute_cycles < 155_000

    def test_56x56_lu_compute_near_paper_modeled(self, params):
        # Table V measured LU compute: 68250 cycles.
        pred = predict_per_block(params, "lu", 56)
        assert 50_000 < pred.compute_cycles < 70_000

    def test_56x56_occupancy_is_112_blocks(self, params):
        pred = predict_per_block(params, "qr", 56)
        assert pred.occupancy.blocks_per_chip == 112

    def test_gflops_in_figure9_band(self, params):
        # Figure 9 at n=56: ~180-210 GFLOPS for QR, ~150-190 for LU.
        qr = predict_per_block(params, "qr", 56).gflops
        lu = predict_per_block(params, "lu", 56).gflops
        assert 160 < qr < 220
        assert 140 < lu < 200

    def test_thread_switch_causes_drop_at_80(self, params):
        # Figure 9's sharp drop between n=64 and n=80.
        at64 = predict_per_block(params, "qr", 64).gflops
        at80 = predict_per_block(params, "qr", 80).gflops
        assert at80 < at64 * 0.8

    def test_recovery_after_switch(self, params):
        at80 = predict_per_block(params, "qr", 80).gflops
        at144 = predict_per_block(params, "qr", 144).gflops
        assert at144 > at80 * 1.3

    def test_dram_cycles_positive_and_minor(self, params):
        pred = predict_per_block(params, "qr", 56)
        assert 0 < pred.dram_cycles < pred.compute_cycles

    def test_gauss_jordan_and_least_squares_supported(self, params):
        gj = predict_per_block(params, "gauss_jordan", 32)
        ls = predict_per_block(params, "least_squares", 48, 32)
        assert gj.gflops > 0
        assert ls.gflops > 0

    def test_unknown_kind_rejected(self, params):
        with pytest.raises(ValueError):
            predict_per_block(params, "cholesky", 32)

    def test_non_square_stap_shape(self, params):
        pred = predict_per_block(params, "qr", 80, 16, complex_dtype=True)
        assert pred.gflops > 0
        assert pred.config.threads == 64


class TestPanelBreakdown:
    def test_seven_panels_for_56x56(self, params):
        pred = predict_per_block(params, "qr", 56)
        assert len(panel_breakdown(pred)) == 7

    def test_panels_decrease_in_cost(self, params):
        # Figure 8: "As the factorization proceeds the matrix becomes
        # smaller so each panel takes less time."
        pred = predict_per_block(params, "qr", 56)
        totals = [sum(p.values()) for p in panel_breakdown(pred)]
        assert totals == sorted(totals, reverse=True)

    def test_ops_labelled_like_figure8(self, params):
        pred = predict_per_block(params, "qr", 56)
        first = panel_breakdown(pred)[0]
        assert set(first) == set(QR_OPS)

    def test_mv_multiply_dominates_early_panels(self, params):
        # Figure 8 left: MV multiply is the largest slice of panel 1.
        pred = predict_per_block(params, "qr", 56)
        first = panel_breakdown(pred)[0]
        assert first["Matrix-Vector Multiply"] >= max(first.values()) - 1e-9

    def test_breakdown_sums_to_compute(self, params):
        pred = predict_per_block(params, "lu", 56)
        total = sum(sum(p.values()) for p in panel_breakdown(pred))
        assert total == pytest.approx(pred.compute_cycles)
