"""One-problem-per-thread roofline predictions (Figure 4 dashed lines)."""

import pytest

from repro.model import ModelParameters, predict_per_thread


@pytest.fixture(scope="module")
def params():
    return ModelParameters.paper_table_iv()


class TestPredictions:
    def test_7x7_qr_is_126_gflops(self, params):
        pred = predict_per_thread(params, "qr", 7)
        assert pred.gflops == pytest.approx(126, rel=0.01)
        assert pred.intensity == pytest.approx(1.17, abs=0.01)

    def test_figure4_qr_range(self, params):
        # Figure 4's y-axis: QR climbs from ~30 GFLOPS at n=3 to ~140 at
        # n=8 on the model line.
        low = predict_per_thread(params, "qr", 3).gflops
        high = predict_per_thread(params, "qr", 8).gflops
        assert 20 < low < 60
        assert 120 < high < 160

    def test_qr_beats_lu_at_same_n(self, params):
        # More flops over the same traffic: higher intensity.
        for n in (4, 8, 12):
            qr = predict_per_thread(params, "qr", n)
            lu = predict_per_thread(params, "lu", n)
            assert qr.gflops > lu.gflops

    def test_prediction_linear_in_n(self, params):
        # Intensity of an n^3-flop / n^2-word problem grows ~linearly.
        g4 = predict_per_thread(params, "lu", 4).gflops
        g8 = predict_per_thread(params, "lu", 8).gflops
        assert g8 == pytest.approx(2 * g4, rel=0.01)

    def test_monotone_in_n(self, params):
        vals = [predict_per_thread(params, "qr", n).gflops for n in range(3, 13)]
        assert vals == sorted(vals)

    def test_traffic_counts_read_and_write(self, params):
        pred = predict_per_thread(params, "qr", 7)
        assert pred.bytes_per_problem == 392

    def test_unknown_kind_rejected(self, params):
        with pytest.raises(ValueError):
            predict_per_thread(params, "cholesky", 4)
