"""Tiled QR: tile kernels, full factorization, autotuned tile heights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.gpu import QUADRO_6000
from repro.kernels.batched import qr_factor, random_batch, solve_upper, triangular_error
from repro.tiled import choose_tile_rows, geqrt, tiled_qr, tsqrt


def r_magnitudes_match(r1, r2, tol):
    """R factors agree up to column signs (the QR sign ambiguity)."""
    return np.abs(np.abs(r1) - np.abs(r2)).max() <= tol * max(1.0, np.abs(r2).max())


class TestTileKernels:
    def test_geqrt_matches_direct_qr(self):
        a = random_batch(3, 24, 8, dtype=np.float64, seed=1)
        tile = geqrt(a, fast_math=False)
        direct = qr_factor(a.copy(), fast_math=False)
        np.testing.assert_allclose(tile.r, direct.r(), atol=1e-12)

    def test_geqrt_rejects_wide(self):
        with pytest.raises(ShapeError):
            geqrt(random_batch(2, 4, 8, dtype=np.float32))

    def test_tsqrt_combines_two_tiles(self):
        a = random_batch(2, 32, 8, dtype=np.float64, seed=2)
        top = geqrt(a[:, :16], fast_math=False)
        combined = tsqrt(top.r[:, :8], a[:, 16:], fast_math=False)
        direct = qr_factor(a.copy(), fast_math=False)
        assert r_magnitudes_match(combined.r, direct.r(), 1e-12)

    def test_tsqrt_shape_validation(self):
        r = np.triu(random_batch(2, 8, 8, dtype=np.float32))
        with pytest.raises(ShapeError):
            tsqrt(r, random_batch(2, 8, 6, dtype=np.float32))
        with pytest.raises(ShapeError):
            tsqrt(random_batch(2, 8, 6, dtype=np.float32), r)

    def test_carried_rhs_shape_validated(self):
        a = random_batch(2, 16, 4, dtype=np.float32)
        with pytest.raises(ShapeError):
            geqrt(a, carried=np.zeros((2, 15), dtype=np.float32))


class TestTiledQr:
    @pytest.mark.parametrize(
        "shape,dtype",
        [
            ((240, 66), np.complex64),
            ((192, 96), np.complex64),
            ((128, 32), np.float32),
            ((100, 10), np.float64),
        ],
    )
    def test_matches_direct_qr_up_to_signs(self, shape, dtype):
        m, n = shape
        a = random_batch(2, m, n, dtype=dtype, seed=m)
        res = tiled_qr(a)
        direct = qr_factor(a.copy(), fast_math=False)
        tol = 1e-4 if np.dtype(dtype).itemsize <= 8 else 1e-10
        assert r_magnitudes_match(res.r, direct.r(), tol)
        assert triangular_error(res.r) == 0

    def test_gram_identity(self):
        # R^H R == A^H A regardless of sign conventions.
        a = random_batch(2, 200, 24, dtype=np.float64, seed=5)
        res = tiled_qr(a, fast_math=False)
        gram_r = np.swapaxes(res.r.conj(), 1, 2) @ res.r
        gram_a = np.swapaxes(a.conj(), 1, 2) @ a
        np.testing.assert_allclose(gram_r, gram_a, rtol=1e-6, atol=1e-8)

    def test_least_squares_through_carried_rhs(self):
        a = random_batch(2, 150, 20, dtype=np.float64, seed=6)
        b = random_batch(2, 150, 1, dtype=np.float64, seed=7)
        res = tiled_qr(a, b)
        x = solve_upper(res.r, res.carried, fast_math=False)
        ref = np.stack([np.linalg.lstsq(a[i], b[i], rcond=None)[0] for i in range(2)])
        np.testing.assert_allclose(x, ref, atol=1e-6)

    def test_single_tile_degenerates_to_geqrt(self):
        a = random_batch(2, 40, 10, dtype=np.float32, seed=8)
        res = tiled_qr(a, tile_rows=40)
        assert len(res.launches) == 1
        assert res.stage_shapes == ((40, 10),)

    def test_wide_input_rejected(self):
        with pytest.raises(ShapeError):
            tiled_qr(random_batch(2, 8, 16, dtype=np.float32))

    def test_small_tile_rows_rejected(self):
        a = random_batch(2, 64, 16, dtype=np.float32)
        with pytest.raises(ShapeError):
            tiled_qr(a, tile_rows=8)

    def test_rhs_shape_validated(self):
        a = random_batch(2, 64, 16, dtype=np.float32)
        with pytest.raises(ShapeError):
            tiled_qr(a, b=np.zeros((2, 63), dtype=np.float32))

    def test_timing_accumulates_over_stages(self):
        a = random_batch(1, 240, 66, dtype=np.complex64)
        res = tiled_qr(a, tile_rows=80)
        assert len(res.launches) >= 3
        assert res.seconds > 0
        assert res.gflops > 0

    @given(
        m=st.integers(min_value=20, max_value=120),
        n=st.integers(min_value=2, max_value=18),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_gram_identity_property(self, m, n, seed):
        a = random_batch(1, m, n, dtype=np.float64, seed=seed)
        res = tiled_qr(a, tile_rows=max(n, 32), fast_math=False)
        gram_r = np.swapaxes(res.r.conj(), 1, 2) @ res.r
        gram_a = np.swapaxes(a.conj(), 1, 2) @ a
        np.testing.assert_allclose(gram_r, gram_a, rtol=1e-6, atol=1e-7)


class TestChooseTileRows:
    def test_small_problem_single_tile(self):
        assert choose_tile_rows(40, 40, False, QUADRO_6000) == 40

    def test_result_is_feasible(self):
        rows = choose_tile_rows(240, 66, True, QUADRO_6000)
        assert 66 <= rows <= 240

    def test_invalid_dims_rejected(self):
        with pytest.raises(ShapeError):
            choose_tile_rows(0, 8, False, QUADRO_6000)

    def test_tuner_beats_worst_candidate(self):
        # The autotuned height must not be slower than the minimal tile.
        a = random_batch(1, 240, 66, dtype=np.complex64)
        best = choose_tile_rows(240, 66, True, QUADRO_6000)
        tuned = tiled_qr(a, tile_rows=best)
        minimal = tiled_qr(a, tile_rows=66)
        assert tuned.seconds <= minimal.seconds * 1.001
