"""Experiment registry: every artefact regenerates and hits its bands."""

import math

import pytest

from repro.reporting import list_experiments, run_experiment
from repro.reporting.experiments import EXPERIMENTS


class TestRegistry:
    def test_all_sixteen_artefacts_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table7",
            "fig1", "fig2", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12",
        }
        assert set(list_experiments()) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    @pytest.mark.parametrize("eid", sorted(EXPERIMENTS))
    def test_every_experiment_runs_and_reports(self, eid):
        res = run_experiment(eid)
        assert res.experiment_id == eid
        assert len(res.report.splitlines()) >= 3
        assert res.data


class TestArtefactBands:
    """Spot checks that the regenerated artefacts keep the paper's shape."""

    def test_table4_within_5_percent(self):
        data = run_experiment("table4").data
        from repro.reporting.paper_values import TABLE_IV

        for key, ref in TABLE_IV.items():
            assert data[key] == pytest.approx(ref, rel=0.05), key

    def test_fig1_staircase(self):
        data = run_experiment("fig1").data
        lats = data["latency"]
        assert lats[0] < 160
        assert max(lats) > 550

    def test_fig2_anchor(self):
        data = run_experiment("fig2").data
        idx = data["threads"].index(64)
        assert data["latency"][idx] == 46

    def test_fig4_peak_and_collapse(self):
        data = run_experiment("fig4").data
        idx7 = data["n"].index(7)
        idx12 = data["n"].index(12)
        assert data["qr_measured"][idx7] == pytest.approx(126, rel=0.1)
        assert data["qr_measured"][idx12] < 0.5 * data["qr_predicted"][idx12]

    def test_fig7_2d_dominates(self):
        data = run_experiment("fig7").data
        for i, n in enumerate(data["n"]):
            if n <= 16:
                continue
            assert data["2D cyclic"][i] > data["1D column cyclic"][i], n
            assert data["1D column cyclic"][i] > data["1D row cyclic"][i], n

    def test_table5_within_20_percent(self):
        data = run_experiment("table5").data
        from repro.reporting.paper_values import TABLE_V

        for kind in ("lu", "qr"):
            for phase in ("load", "compute", "store"):
                ratio = data[kind][phase] / TABLE_V[kind][phase]
                assert 0.8 < ratio < 1.25, (kind, phase)

    def test_fig8_measured_tops_modeled(self):
        data = run_experiment("fig8").data
        measured = sum(sum(p.values()) for p in data["measured"])
        modeled = sum(sum(p.values()) for p in data["modeled"])
        assert measured > modeled

    def test_fig9_thread_switch_visible(self):
        data = run_experiment("fig9").data
        i64 = data["n"].index(64)
        i80 = data["n"].index(80)
        assert data["qr_measured"][i80] < data["qr_measured"][i64]

    def test_fig10_winners(self):
        data = run_experiment("fig10").data
        ns = data["n"]
        i8, i64, i8192 = ns.index(8), ns.index(64), ns.index(8192)
        assert data["qr_per_thread"][i8] > data["qr_per_block"][i8]
        assert data["qr_per_block"][i64] > data["qr_per_thread"][i64]
        assert data["qr_hybrid"][i8192] > 300
        assert math.isnan(data["qr_per_thread"][i8192])

    def test_fig11_gpu_wins_everywhere(self):
        data = run_experiment("fig11").data
        for i in range(len(data["n"])):
            assert data["qr_per_block"][i] > data["qr_mkl"][i]
            assert data["qr_per_block"][i] > data["qr_magma_gpu_start"][i]

    def test_fig12_gpu_wins_everywhere(self):
        data = run_experiment("fig12").data
        for i in range(len(data["n"])):
            assert data["qr_solve_per_block"][i] > data["qr_solve_mkl"][i]
            assert data["gj_per_block"][i] > data["gj_mkl"][i]

    def test_table7_speedups(self):
        data = run_experiment("table7").data
        speedups = [row["speedup"] for row in data["rows"]]
        assert all(s > 1.5 for s in speedups)
        assert speedups[0] == max(speedups)  # 80x16 is the big win
