"""CSV/JSON export of experiment data."""

import csv
import json

import pytest

from repro.reporting import export_experiment, run_experiment, to_csv, to_json


@pytest.fixture(scope="module")
def fig2():
    return run_experiment("fig2")


@pytest.fixture(scope="module")
def table7():
    return run_experiment("table7")


class TestJson:
    def test_roundtrip(self, fig2, tmp_path):
        path = to_json(fig2, tmp_path / "fig2.json")
        payload = json.loads(path.read_text())
        assert payload["experiment_id"] == "fig2"
        assert payload["data"]["threads"][0] == 32

    def test_numpy_values_serialized(self, table7, tmp_path):
        path = to_json(table7, tmp_path / "t7.json")
        payload = json.loads(path.read_text())
        assert isinstance(payload["data"]["rows"][0]["gpu_gflops"], float)

    def test_nan_becomes_null(self, tmp_path):
        fig10 = run_experiment("fig10", sizes=(8, 8192))
        payload = json.loads(to_json(fig10, tmp_path / "f.json").read_text())
        assert payload["data"]["qr_per_thread"][-1] is None


class TestCsv:
    def test_series_columns(self, fig2, tmp_path):
        path = to_csv(fig2, tmp_path / "fig2.csv")
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["threads", "latency"]
        assert len(rows) == 1 + len(fig2.data["threads"])

    def test_non_series_rejected(self, table7, tmp_path):
        with pytest.raises(ValueError):
            to_csv(table7, tmp_path / "nope.csv")

    def test_fig9_series(self, tmp_path):
        fig9 = run_experiment("fig9", sizes=(16, 56))
        path = to_csv(fig9, tmp_path / "fig9.csv")
        with path.open() as fh:
            header = next(csv.reader(fh))
        assert "qr_measured" in header and "lu_predicted" in header


class TestExportBundle:
    def test_series_writes_both(self, fig2, tmp_path):
        files = export_experiment(fig2, tmp_path)
        assert {f.suffix for f in files} == {".json", ".csv"}

    def test_table_writes_json_only(self, table7, tmp_path):
        files = export_experiment(table7, tmp_path)
        assert [f.suffix for f in files] == [".json"]

    def test_creates_directory(self, fig2, tmp_path):
        out = tmp_path / "nested" / "dir"
        export_experiment(fig2, out)
        assert (out / "fig2.json").exists()
