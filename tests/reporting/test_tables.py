"""Plain-text rendering helpers."""

import pytest

from repro.reporting import ascii_chart, format_comparison, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len({len(line) for line in lines if line}) <= 2  # header/body same width

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1234.5678], [0.001234], [1.5]])
        assert "1.23e+03" in out or "1230" in out
        assert "0.00123" in out
        assert "1.5" in out


class TestFormatSeries:
    def test_multi_series(self):
        out = format_series([1, 2], {"y1": [10.0, 20.0], "y2": [1.0, 2.0]}, x_label="n")
        assert "n" in out and "y1" in out and "y2" in out
        assert "20" in out


class TestAsciiChart:
    def test_bars_scale(self):
        out = ascii_chart([1, 2], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1], [1.0, 2.0])

    def test_label(self):
        assert ascii_chart([1], [1.0], label="L").splitlines()[0] == "L"


class TestComparison:
    def test_ratio_column(self):
        out = format_comparison([("x", 2.0, 4.0)])
        assert "2.00x" in out

    def test_non_numeric_paper_value(self):
        out = format_comparison([("x", "n/a", 4.0)])
        assert "n/a" in out
