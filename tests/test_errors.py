"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    LaunchConfigurationError,
    RegisterFileOverflowError,
    ReproError,
    ResourceError,
    ShapeError,
    SharedMemoryOverflowError,
    SingularMatrixError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            LaunchConfigurationError,
            RegisterFileOverflowError,
            ResourceError,
            ShapeError,
            SharedMemoryOverflowError,
            SingularMatrixError,
        ):
            assert issubclass(exc, ReproError)

    def test_overflows_are_resource_errors(self):
        assert issubclass(RegisterFileOverflowError, ResourceError)
        assert issubclass(SharedMemoryOverflowError, ResourceError)

    def test_value_error_compatibility(self):
        # Callers using plain ValueError handlers still catch config and
        # shape problems.
        assert issubclass(LaunchConfigurationError, ValueError)
        assert issubclass(ShapeError, ValueError)
        assert issubclass(ResourceError, ValueError)

    def test_singular_is_arithmetic_error(self):
        assert issubclass(SingularMatrixError, ArithmeticError)


class TestOneHandlerCatchesEverything:
    def test_kernel_errors_catchable_as_repro_error(self):
        import numpy as np

        from repro.kernels.batched import gauss_jordan_solve

        with pytest.raises(ReproError):
            gauss_jordan_solve(
                np.zeros((1, 2, 3), dtype=np.float32),
                np.zeros((1, 2), dtype=np.float32),
            )

    def test_launch_errors_catchable_as_repro_error(self):
        from repro.gpu import QUADRO_6000, occupancy

        with pytest.raises(ReproError):
            occupancy(QUADRO_6000, 0, 8)

    def test_resource_errors_catchable_as_repro_error(self):
        from repro.gpu import QUADRO_6000, SharedMemory

        with pytest.raises(ReproError):
            SharedMemory(QUADRO_6000, words=10**9)
