#!/usr/bin/env python
"""Quickstart: factor thousands of small matrices and see why the GPU wins.

This walks the library's main surfaces in one sitting:

1. batch-factor 5,000 56x56 single-precision matrices with the
   register-resident one-problem-per-block QR (the paper's headline
   workload) and verify the numerics,
2. compare the engine-measured throughput against the paper's analytic
   model (Table VI) and against the MKL-like CPU baseline, with the
   per-term model-vs-measured attribution table,
3. let the dispatcher pick the best approach for a few other workloads.

Set ``REPRO_TRACE=trace.json`` to run the whole walkthrough under the
event tracer and write a Chrome ``trace_event`` file (open it at
chrome://tracing or https://ui.perfetto.dev) -- see
docs/observability.md.
"""

import os

import numpy as np

from repro.approaches import Workload, best_approach, rank_approaches
from repro.kernels.batched import (
    QrFactors,
    orthogonality_error,
    qr_reconstruction_error,
    qr_unpack,
    random_batch,
)
from repro.kernels.device import per_block_qr
from repro.microbench import calibrate
from repro.model import predict_per_block
from repro.observe import attribute_launch, format_attribution, tracing
from repro.reporting import format_table


def main() -> None:
    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path:
        from repro.observe import write_chrome_trace

        with tracing() as tracer:
            _walkthrough()
        written = write_chrome_trace(tracer, trace_path)
        print(
            f"\nWrote {len(tracer.events)} trace events to {written} "
            "(open in chrome://tracing or https://ui.perfetto.dev)"
        )
    else:
        _walkthrough()


def _walkthrough() -> None:
    batch, n = 5000, 56

    # --- 1. Factor (numerics are computed for a sample of the batch;
    # cycle cost per block is identical across the batch). -------------
    print(f"Factoring {batch} {n}x{n} single-precision matrices (QR)...")
    sample = random_batch(16, n, n, dtype=np.float32, seed=0)
    result = per_block_qr(sample)

    factors = QrFactors(packed=result.output, taus=result.extra)
    q = qr_unpack(factors)
    print(f"  reconstruction error: {qr_reconstruction_error(sample, q, factors.r()):.2e}")
    print(f"  orthogonality error:  {orthogonality_error(q):.2e}")

    # --- 2. Measured vs modeled vs CPU. --------------------------------
    params = calibrate()
    measured = result.launch.throughput_gflops(batch)
    prediction = predict_per_block(params, "qr", n)
    predicted = prediction.gflops
    from repro.approaches import CpuLapackApproach

    mkl = CpuLapackApproach().gflops(Workload.square("qr", n, batch))

    # Where do the cycles go, term by term?  (Eq. 2 vs the engine.)
    print()
    print(format_attribution(attribute_launch(
        params, result.launch, label=f"{n}x{n} per-block QR",
        prediction=prediction,
    )))
    print()
    print(format_table(
        ["source", "GFLOP/s"],
        [
            ["engine-measured (simulated Quadro 6000)", f"{measured:.1f}"],
            ["analytic model (Table VI)", f"{predicted:.1f}"],
            ["MKL baseline (i7-2600 model)", f"{mkl:.1f}"],
            ["speedup vs MKL", f"{measured / mkl:.1f}x (paper: 29x)"],
        ],
    ))

    # --- 3. The design space is not flat. -------------------------------
    print("\nBest approach by workload:")
    rows = []
    for kind, size, b in (("qr", 8, 64000), ("qr", 56, 5000), ("qr", 1024, 4),
                          ("lu", 32, 10000)):
        work = Workload.square(kind, size, b)
        ranked = rank_approaches(work)
        rows.append([kind, f"{size}x{size}", b, ranked[0].name,
                     f"{ranked[0].gflops:.1f}"])
    print(format_table(["kind", "size", "batch", "winner", "GFLOP/s"], rows))


if __name__ == "__main__":
    main()
