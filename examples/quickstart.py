#!/usr/bin/env python
"""Quickstart: factor thousands of small matrices and see why the GPU wins.

This walks the library's main surfaces in one sitting:

1. batch-factor 5,000 56x56 single-precision matrices with the
   register-resident one-problem-per-block QR (the paper's headline
   workload) and verify the numerics,
2. compare the engine-measured throughput against the paper's analytic
   model (Table VI) and against the MKL-like CPU baseline, with the
   per-term model-vs-measured attribution table,
3. let the dispatcher pick the best approach for a few other workloads
   (memoized through the persistent dispatch cache),
4. ship a real batch through the sharded multi-process runtime
   (``repro.runtime``) and compare against the serial launch,
5. inspect the fleet telemetry the run left behind: per-launch regime
   classification, cache hit rates, and the metrics/history artifacts
   the ``python -m repro.observe.report`` dashboard reads.

Calibration goes through the persistent cache under ``~/.cache/repro``
(override with ``REPRO_CACHE_DIR``), so every run after the first skips
the Table-IV microbenchmark sweep.  Set ``REPRO_WORKERS`` to change the
runtime's pool size (default 2 here).

Set ``REPRO_TRACE=trace.json`` to run the whole walkthrough under the
event tracer and write a Chrome ``trace_event`` file (open it at
chrome://tracing or https://ui.perfetto.dev) -- see
docs/observability.md.  Set ``REPRO_LOG=1`` to also stream structured
JSONL log records (trace-correlated via span ids) to
``<cache dir>/events.jsonl``, ready for the SLO gate
``python -m repro.observe.alerts check``.
"""

import os

import numpy as np

from repro.approaches import Workload
from repro.kernels.batched import (
    QrFactors,
    diagonally_dominant_batch,
    orthogonality_error,
    qr_reconstruction_error,
    qr_unpack,
    random_batch,
    run_batched,
)
from repro.kernels.device import per_block_lu, per_block_qr
from repro.microbench import calibrate
from repro.model import predict_per_block
from repro.observe import attribute_launch, format_attribution, tracing
from repro.reporting import format_table
from repro.runtime import BatchRuntime


def main() -> None:
    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path:
        from repro.observe import write_chrome_trace

        with tracing() as tracer:
            _walkthrough()
        written = write_chrome_trace(tracer, trace_path)
        print(
            f"\nWrote {len(tracer.events)} trace events to {written} "
            "(open in chrome://tracing or https://ui.perfetto.dev)"
        )
    else:
        _walkthrough()


def _walkthrough() -> None:
    batch, n = 5000, 56

    # --- 1. Factor (numerics are computed for a sample of the batch;
    # cycle cost per block is identical across the batch). -------------
    print(f"Factoring {batch} {n}x{n} single-precision matrices (QR)...")
    sample = random_batch(16, n, n, dtype=np.float32, seed=0)
    result = per_block_qr(sample)

    factors = QrFactors(packed=result.output, taus=result.extra)
    q = qr_unpack(factors)
    rec_err = qr_reconstruction_error(sample, q, factors.r())
    print(f"  reconstruction error: {rec_err:.2e}")
    print(f"  orthogonality error:  {orthogonality_error(q):.2e}")

    # --- 2. Measured vs modeled vs CPU. --------------------------------
    # calibrate(cache=True) persists the Table-IV sweep per device: the
    # first run measures, every later run loads (~0 cost, no span).
    params = calibrate(cache=True)
    measured = result.launch.throughput_gflops(batch)
    prediction = predict_per_block(params, "qr", n)
    predicted = prediction.gflops
    from repro.approaches import CpuLapackApproach

    mkl = CpuLapackApproach().gflops(Workload.square("qr", n, batch))

    # Where do the cycles go, term by term?  (Eq. 2 vs the engine.)
    print()
    print(format_attribution(attribute_launch(
        params, result.launch, label=f"{n}x{n} per-block QR",
        prediction=prediction,
    )))
    print()
    print(format_table(
        ["source", "GFLOP/s"],
        [
            ["engine-measured (simulated Quadro 6000)", f"{measured:.1f}"],
            ["analytic model (Table VI)", f"{predicted:.1f}"],
            ["MKL baseline (i7-2600 model)", f"{mkl:.1f}"],
            ["speedup vs MKL", f"{measured / mkl:.1f}x (paper: 29x)"],
        ],
    ))

    # --- 3. The design space is not flat. -------------------------------
    # Rankings flow through the runtime's persistent dispatch cache, so a
    # repeated workload never re-evaluates the five candidate models.
    workers = int(os.environ.get("REPRO_WORKERS", "2"))
    runtime = BatchRuntime(workers=workers)
    print("\nBest approach by workload:")
    rows = []
    for kind, size, b in (("qr", 8, 64000), ("qr", 56, 5000), ("qr", 1024, 4),
                          ("lu", 32, 10000)):
        work = Workload.square(kind, size, b)
        ranked = runtime.rank(work)
        rows.append([kind, f"{size}x{size}", b, ranked[0].name,
                     f"{ranked[0].gflops:.1f}"])
    print(format_table(["kind", "size", "batch", "winner", "GFLOP/s"], rows))

    # --- 4. Execute a batch for real on the sharded runtime. ------------
    # 2,048 24x24 LUs, chunked size-aware and fanned across worker
    # processes; outputs and counters merge back bitwise-identical to the
    # serial launch.
    lu_batch = diagonally_dominant_batch(2048, 24, dtype=np.float32, seed=1)
    import time as _time

    t0 = _time.perf_counter()
    serial = per_block_lu(lu_batch)
    serial_s = _time.perf_counter() - t0
    sharded_runtime = BatchRuntime(workers=workers, chunk_cost=4e6)
    report = run_batched("lu", lu_batch, runtime=sharded_runtime)
    identical = np.array_equal(report.output, serial.output)
    print(f"\nSharded runtime ({report.mode}, {report.workers} workers, "
          f"{report.chunks} chunks over {report.problems} problems):")
    print(format_table(
        ["path", "wall [s]", "simulated GFLOP/s", "identical"],
        [
            ["serial launch", f"{serial_s:.3f}", f"{serial.gflops:.1f}", "--"],
            ["sharded runtime", f"{report.wall_s:.3f}",
             f"{report.results[0].gflops:.1f}", str(identical)],
        ],
    ))
    if not identical:
        raise SystemExit("sharded output diverged from the serial launch")

    # Under REPRO_TRACE the run also carries its critical-path profile:
    # where the batch wall actually went, phase by phase.
    if report.profile is not None:
        profile = report.profile
        shares = profile.phase_shares()
        print(f"\nLatency decomposition (batch wall {profile.wall_s:.3f}s, "
              f"straggler index {profile.straggler_index:.2f}):")
        print(format_table(
            ["phase", "seconds", "share"],
            [[phase, f"{profile.phases[phase]:.4f}", f"{shares[phase]:.1%}"]
             for phase in sorted(profile.phases, key=lambda p: -profile.phases[p])],
        ))
        print("Timeline gate:     python -m repro.observe.timeline trace.json --strict")

    # --- 5. Fleet telemetry. --------------------------------------------
    # Every instrumented layer above (kernels, caches, dispatch, the
    # sharded runtime) has been writing labeled metrics into the process
    # registry, and each runtime launch appended a history record with
    # its regime classification.  Snapshot both for the dashboard CLI.
    from repro.observe import (
        default_registry,
        write_metrics_snapshot,
        write_prometheus,
    )

    if report.regimes:
        print("\nRegime classification (dominant Eq. 1/Eq. 2 term shares):")
        print(format_table(
            ["op", "regime", "dominant term", "share"],
            [
                [c.label, c.regime, c.dominant_term,
                 f"{c.shares[c.regime]:.0%}"]
                for c in report.regimes
            ],
        ))

    registry = default_registry()
    rows = []
    for cache in registry.label_values("repro_cache_requests_total", "cache"):
        hits = registry.sum_series(
            "repro_cache_requests_total", cache=cache, outcome="hit")
        total = registry.sum_series("repro_cache_requests_total", cache=cache)
        rows.append([cache, int(hits), int(total),
                     f"{hits / total:.0%}" if total else "-"])
    if rows:
        print("\nCache traffic this run:")
        print(format_table(["cache", "hits", "requests", "hit rate"], rows))

    snapshot = write_metrics_snapshot(registry)
    write_prometheus(registry)
    history = sharded_runtime.history
    print(f"\nMetrics snapshot: {snapshot} (+ .prom sibling)")
    if history is not None:
        print(f"Run history:      {history.path} ({len(history)} records)")
    from repro.observe import log as obslog

    if obslog.log_enabled():
        print(f"Structured log:   {obslog.default_logger().path}")
        print("SLO gate:         python -m repro.observe.alerts check "
              "benchmarks/specs/slo_default.toml --strict")
    print("Dashboard:        python -m repro.observe.report")


if __name__ == "__main__":
    main()
