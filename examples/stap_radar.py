#!/usr/bin/env python
"""Space-time adaptive radar processing end to end (Section VII).

Simulates a coherent processing interval (clutter ridge + jammers +
noise), Doppler-filters it, computes QR-based adaptive weights from
training snapshots, and shows the jammer/clutter suppression the adapted
beamformer achieves.  Then reruns the Table VII benchmark sizes and
prints the paper-vs-measured comparison.
"""

import numpy as np

from repro.reporting import format_table, run_experiment
from repro.stap import (
    RadarScenario,
    cell_averaging_cfar,
    generate_datacube,
    inject_target,
    qr_adaptive_weights,
    run_pipeline,
    space_time_steering,
    training_matrices,
)


def main() -> None:
    # --- End-to-end pipeline with an injected target. -------------------
    scenario = RadarScenario(channels=8, pulses=16, ranges=512)
    print(f"Scenario: {scenario.channels} channels x {scenario.pulses} pulses, "
          f"{scenario.ranges} range gates, CNR {10*np.log10(scenario.cnr):.0f} dB, "
          f"{len(scenario.jammer_angles)} jammers")
    result = run_pipeline(scenario)
    print(f"adapted-vs-unadapted SINR improvement: {result.improvement_db:.1f} dB")

    # --- Beampattern sanity: look direction vs jammer direction. --------
    cube = generate_datacube(scenario)
    dof = scenario.channels * scenario.pulses
    training = training_matrices(cube, 1, 2 * dof, dof)
    look = space_time_steering(scenario.channels, scenario.pulses, 0.1, 0.25)
    w = qr_adaptive_weights(training, look).weights[0]
    rows = []
    for name, angle, doppler in (
        ("look direction", 0.1, 0.25),
        ("jammer 1", scenario.jammer_angles[0], 0.0),
        ("jammer 2", scenario.jammer_angles[1], 0.1),
        ("clutter ridge", 0.3, 0.5 * np.sin(0.3)),
    ):
        v = space_time_steering(scenario.channels, scenario.pulses, angle, doppler)
        gain_db = 20 * np.log10(max(abs(np.vdot(w, v)), 1e-12))
        rows.append([name, f"{gain_db:+.1f} dB"])
    print()
    print(format_table(["direction", "adapted gain"], rows,
                       title="Adapted beampattern (0 dB = look direction)"))

    # --- CFAR detection on the adapted output. ---------------------------
    target_gate = scenario.ranges // 2
    bumped = inject_target(cube, 0.1, 0.25, 5.0, target_gate)
    adapted = np.abs(bumped.snapshots() @ w.conj()) ** 2
    unadapted = np.abs(
        bumped.snapshots() @ (look / np.linalg.norm(look) ** 2).conj()
    ) ** 2
    hits_adapted = cell_averaging_cfar(adapted).detection_indices
    hits_unadapted = cell_averaging_cfar(unadapted).detection_indices
    print()
    print(f"CFAR on a weak target at gate {target_gate}:")
    print(f"  unadapted beamformer detections: {hits_unadapted.tolist()}")
    print(f"  adapted beamformer detections:   {hits_adapted.tolist()}")

    # --- Table VII. ------------------------------------------------------
    print()
    print(run_experiment("table7").report)


if __name__ == "__main__":
    main()
