#!/usr/bin/env python
"""Real-time radar budgeting: which platform keeps up with which radar?

Section I motivates STAP as "typically limited by the processing
capabilities of the radar system".  This example asks the operational
question: at a given coherent-processing-interval (CPI) rate, which
platform/mapping combinations meet the QR phase's deadline, and what is
the fastest radar each could serve?
"""

from repro.approaches import (
    CpuLapackApproach,
    PerBlockApproach,
    TiledQrApproach,
    Workload,
)
from repro.reporting import format_table
from repro.stap import RT_STAP_CASES, RealTimeBudget, assess_realtime


def main() -> None:
    budget = RealTimeBudget(cpi_rate_hz=10.0, qr_time_share=0.5)
    print(f"Budget: {budget.cpi_rate_hz:.0f} CPIs/s, "
          f"{budget.qr_time_share:.0%} of each CPI available for the QR phase "
          f"({budget.qr_deadline_seconds*1e3:.0f} ms deadline)\n")

    platforms = [
        ("GPU per-block", PerBlockApproach()),
        ("GPU tiled", TiledQrApproach()),
        ("CPU (MKL model)", CpuLapackApproach()),
    ]
    rows = []
    for case in RT_STAP_CASES:
        for name, approach in platforms:
            work = Workload("qr", case.rows, case.cols, case.num_matrices,
                            complex_dtype=True)
            if not approach.supports(work):
                continue
            report = assess_realtime(case, approach, budget)
            rows.append([
                case.label, name,
                f"{report.seconds_per_cpi * 1e3:.1f} ms",
                "yes" if report.meets_deadline else "NO",
                f"{report.headroom:.1f}x",
                f"{report.max_cpi_rate_hz:.0f} Hz",
            ])
    print(format_table(
        ["case", "platform", "QR time/CPI", "real-time?", "headroom",
         "max CPI rate"],
        rows,
    ))
    print("\nThe register-resident GPU mappings hold real time with an order"
          "\nof magnitude of headroom on the small case; the CPU baseline is"
          "\nmarginal exactly where the paper says radar systems are limited.")


if __name__ == "__main__":
    main()
