#!/usr/bin/env python
"""Speech-recognition GMM scoring with batched small GEMM (Section I).

"To compute observation probabilities with a Gaussian mixture model,
large-vocabulary continuous speech recognition applications multiply
thousands of 79x16 matrices roughly every one-tenth second."  This
example scores a frame batch against a GMM-based acoustic model using
the batched matmul kernel and checks the 100 ms real-time budget against
the per-thread approach's modelled throughput.
"""

import numpy as np

from repro.kernels.batched import batched_matmul, random_batch
from repro.model import matmul_flops
from repro.reporting import format_table


def main() -> None:
    states, mixtures, features = 4000, 79, 16
    frames = 10  # feature frames scored together

    print(f"Scoring {states} GMM states: ({mixtures}x{features}) mean matrices "
          f"x ({features}x{frames}) feature block...")
    means = random_batch(states, mixtures, features, dtype=np.float32, seed=0)
    feats = random_batch(1, features, frames, dtype=np.float32, seed=1)

    # Mahalanobis-style linear term per state: M @ f.
    scores = batched_matmul(means, feats)
    assert scores.shape == (states, mixtures, frames)
    log_like = scores.max(axis=1)  # best mixture per frame

    # Timing: the 79x16 multiplies are tiny, i.e. bandwidth-bound --
    # exactly the one-problem-per-thread regime.
    flops = matmul_flops(mixtures, features, frames) * states
    traffic = 4 * states * (mixtures * features + features * frames
                            + mixtures * frames)
    bandwidth = 106.5e9  # achieved copy bandwidth of the simulated device
    seconds = traffic / bandwidth
    budget = 0.1  # "roughly every one-tenth second"

    rows = [
        ["states x mixtures x features", f"{states} x {mixtures} x {features}"],
        ["total work", f"{flops / 1e6:.1f} MFLOP"],
        ["DRAM traffic", f"{traffic / 1e6:.1f} MB"],
        ["bandwidth-bound time", f"{seconds * 1e3:.2f} ms"],
        ["real-time budget", f"{budget * 1e3:.0f} ms"],
        ["headroom", f"{budget / seconds:.0f}x"],
        ["best score sample", f"{float(log_like[0, 0]):.3f}"],
    ]
    print(format_table(["quantity", "value"], rows))
    print("\nThe workload fits the real-time budget with two orders of "
          "magnitude to spare on the simulated Quadro 6000.")


if __name__ == "__main__":
    main()
