#!/usr/bin/env python
"""Design-space explorer: who wins at which problem size (Figure 10).

Sweeps matrix sizes from 2 to 8192, evaluates every applicable approach,
and charts the winner -- the paper's "the overall design space is not
flat" conclusion, as an interactive-ish tool.  Pass a factorization kind
(qr/lu) as an argument to switch workloads.
"""

import sys

from repro.approaches import Workload, rank_approaches
from repro.reporting import ascii_chart, format_table


def main(kind: str = "qr") -> None:
    sizes = [2, 4, 8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096, 8192]
    rows, best = [], []
    for n in sizes:
        batch = 8000 if n <= 256 else max(1, 2048 // n)
        ranked = rank_approaches(Workload.square(kind, n, batch))
        rows.append([
            n, batch, ranked[0].name, f"{ranked[0].gflops:.1f}",
            ", ".join(f"{r.name}={r.gflops:.1f}" for r in ranked[1:3]),
        ])
        best.append(ranked[0].gflops)
    print(format_table(
        ["n", "batch", "winner", "GFLOP/s", "runners-up"],
        rows,
        title=f"Design space for batched {kind.upper()} (simulated Quadro 6000)",
    ))
    print()
    print(ascii_chart(sizes, best, label="Winning approach throughput (GFLOP/s):"))
    print("\nPer-thread wins while the matrix fits a register file, per-block")
    print("while a block's register file holds it, and the hybrid blocked")
    print("library takes over for large single factorizations.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "qr")
