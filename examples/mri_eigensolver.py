#!/usr/bin/env python
"""MRI-style batched eigendecomposition (the Section I motivation).

"MRI reconstruction ... requires solving up to a billion small (8x8 or
32x32) complex eigenvalue problems, one for each voxel."  This example
builds voxel-wise coil-correlation matrices (as an ESPIRiT/L1-SPIRiT
style reconstruction would), eigensolves them in lockstep with the
batched cyclic-Jacobi kernel, and validates the dominant eigenvectors --
the per-voxel coil sensitivities.
"""

import numpy as np

from repro.kernels.batched import hermitian_batch, jacobi_eigh
from repro.reporting import format_table


def voxel_correlation_matrices(voxels: int, coils: int, seed: int = 42) -> np.ndarray:
    """Synthetic coil-correlation matrices with a dominant rank-1 part.

    Each voxel's matrix is s s^H (the true sensitivity outer product)
    plus scaled Hermitian noise -- the structure an MRI calibration
    produces.
    """
    rng = np.random.default_rng(seed)
    s = rng.standard_normal((voxels, coils)) + 1j * rng.standard_normal((voxels, coils))
    s = (s / np.linalg.norm(s, axis=1, keepdims=True)).astype(np.complex64)
    rank1 = np.einsum("vi,vj->vij", s, s.conj()).astype(np.complex64)
    noise = 0.05 * hermitian_batch(voxels, coils, dtype=np.complex64, seed=seed + 1)
    return rank1 + noise, s


def main() -> None:
    voxels, coils = 4096, 8
    print(f"Eigensolving {voxels} voxel correlation matrices ({coils}x{coils} "
          f"complex Hermitian) with batched cyclic Jacobi...")
    matrices, truth = voxel_correlation_matrices(voxels, coils)
    result = jacobi_eigh(matrices.copy())
    print(f"  converged in {result.sweeps_used} sweeps "
          f"(off-diagonal norm {result.off_diagonal_norm:.2e})")

    # Dominant eigenvector per voxel = estimated coil sensitivity.
    dominant = result.eigenvectors[:, :, -1]
    # Phase-align before comparing (eigenvectors are defined up to phase).
    phase = np.einsum("vi,vi->v", dominant.conj(), truth)
    phase = phase / np.abs(phase)
    aligned = dominant * phase[:, None]
    err = np.linalg.norm(aligned - truth, axis=1)

    ref = np.linalg.eigvalsh(matrices[:64].astype(np.complex128))
    jac = result.eigenvalues[:64]
    rows = [
        ["voxels", voxels],
        ["matrix size", f"{coils}x{coils} complex64"],
        ["Jacobi sweeps", result.sweeps_used],
        ["max sensitivity error", f"{err.max():.2e}"],
        ["median sensitivity error", f"{np.median(err):.2e}"],
        ["max |eig - LAPACK| (64-voxel sample)", f"{np.abs(jac - ref).max():.2e}"],
    ]
    print(format_table(["quantity", "value"], rows))


if __name__ == "__main__":
    main()
